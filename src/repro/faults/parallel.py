"""Process-parallel fault-injection campaigns (``--jobs N``).

Campaign-scale injection studies only reach statistical significance
with thousands of trials, and trials are embarrassingly parallel: each
one is a deterministic function of (binary, fault site).  The sharded
runner here exploits that while keeping the campaign *bit-identical*
to the serial path, trial for trial:

* the parent samples **all** fault sites up front from the single
  seeded RNG -- exactly the sequence the serial loop would draw -- so
  parallelism never perturbs the fault distribution;
* the site list is split into contiguous shards, one per worker, so
  trial order (and therefore telemetry order) is preserved by simple
  concatenation;
* each worker compiles its own :class:`~repro.sim.machine.Machine`
  from the pickled program and builds its own golden-run checkpoints
  (compiled machines hold closures and cannot cross process
  boundaries), then runs its shard through the same
  :class:`~repro.faults.injector.CheckpointStore` path as the serial
  campaign;
* per-trial telemetry is streamed by each worker into a shard JSONL
  file; the parent concatenates the shards in trial order into the
  caller's :class:`~repro.obs.campaign_log.CampaignLog`;
* shard aggregates are combined with
  :meth:`CampaignResult.merged() <repro.faults.campaign.CampaignResult.merged>`,
  whose golden-instruction fingerprint guards against workers having
  somehow campaigned different binaries.

``jobs=N`` therefore produces the same :class:`CampaignResult` counts
and the same concatenated trial records as ``jobs=1``, which
``tests/test_parallel.py`` asserts.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import shutil
import tempfile
from time import perf_counter

from ..errors import SimulationError
from ..isa.program import Program
from ..obs import spans
from ..obs.campaign_log import CampaignLog, TrialRecord
from ..obs.spans import span
from ..sim.events import RunStatus
from ..sim.jit import attach_jit
from ..sim.machine import Machine
from ..sim.taint import TaintTracker
from .campaign import CampaignResult, record_campaign_metrics, run_campaign
from .injector import CheckpointStore, fault_landed, golden_run
from .model import FaultSite, sample_fault_site
from .outcomes import classify

# Per-worker state, populated once by the pool initializer so shard
# tasks reuse the compiled machine and its checkpoints.
_WORKER: dict = {}


def _init_worker(program: Program, max_instructions: int,
                 checkpoint_interval: int | None,
                 taint: bool = False, profile: bool = False,
                 heartbeat_path: str | None = None,
                 heartbeat_every: int = 16,
                 jit: bool = False, atlas: bool = False) -> None:
    """Compile this worker's machine and build its golden checkpoints."""
    # Workers must not inherit an enabled span collector from a
    # telemetry-on parent: their spans could never be drained.
    spans.disable()
    machine = Machine(program, max_instructions=max_instructions)
    if jit:
        # Attach before the checkpoint build so the worker's golden
        # run compiles (and caches) once and runs at JIT speed too.
        attach_jit(machine)
    store = CheckpointStore(machine, interval=checkpoint_interval)
    golden = store.build()
    if golden.status is not RunStatus.EXITED:
        raise SimulationError(
            f"worker golden run did not complete cleanly: {golden.status}"
        )
    _WORKER["store"] = store
    _WORKER["golden"] = golden
    _WORKER["taint"] = taint
    _WORKER["profile"] = profile
    _WORKER["heartbeat_path"] = heartbeat_path
    _WORKER["heartbeat_every"] = heartbeat_every
    _WORKER["atlas"] = atlas


def _run_shard(task: tuple[int, int, list[FaultSite], str | None]
               ) -> tuple[CampaignResult, object, object]:
    """Run one contiguous shard of trials in a worker process.

    ``task`` is ``(shard_index, first_trial_index, sites,
    record_path)``; with a ``record_path`` the worker streams one JSON
    line per trial into it (flat :class:`TrialRecord` dicts, no
    context -- the parent owns the campaign context).  With taint
    tracing on, the shard's taint records follow its trial records in
    the same file, each stream in trial order, distinguishable by
    their ``kind`` field.

    Returns ``(result, profiler_or_None, atlas_or_None)``.  A fresh
    profiler (and atlas accumulator) is created per *shard* (not per
    worker: a pool process can run several shards, and per-worker state
    would double-merge); the worker's own golden/checkpoint run
    happened in the initializer and is deliberately outside the
    profiled region, so merged shard profiles equal the serial
    campaign's counts exactly.  The atlas accumulator holds only
    integer tallies (weights are applied by the parent at export), so
    merging shard atlases in shard order reproduces the serial atlas
    bit for bit.
    """
    shard_index, first_trial, sites, record_path = task
    store: CheckpointStore = _WORKER["store"]
    golden = _WORKER["golden"]
    atlas_on = _WORKER.get("atlas", False)
    taint = _WORKER.get("taint", False) and (record_path is not None
                                             or atlas_on)
    heartbeat_path = _WORKER.get("heartbeat_path")
    heartbeat = None
    if heartbeat_path is not None:
        from ..obs.monitor import HeartbeatWriter

        heartbeat = HeartbeatWriter(
            heartbeat_path, role="shard", shard=shard_index,
            total=len(sites), every=_WORKER.get("heartbeat_every", 16))
    profiler = None
    if _WORKER.get("profile"):
        from ..obs.profile import SimProfiler

        profiler = SimProfiler()
        store.machine.profile = profiler
    result = CampaignResult(golden_instructions=golden.instructions)
    log = (CampaignLog() if record_path is not None or atlas_on
           else None)
    try:
        for offset, site in enumerate(sites):
            tracker = TaintTracker() if taint else None
            faulty = store.run_with_fault(site, taint=tracker)
            outcome = classify(golden, faulty)
            result.record(outcome, recovered=faulty.recoveries > 0,
                          landed=fault_landed(site, faulty))
            if log is not None:
                log.record_trial(first_trial + offset, site, outcome, faulty)
                if tracker is not None:
                    log.record_taint(first_trial + offset, tracker)
            if heartbeat is not None:
                heartbeat.tick(offset + 1)
    finally:
        if profiler is not None:
            store.machine.profile = None
    if profiler is not None and taint:
        profiler.taint_trials += len(sites)
    atlas = None
    if atlas_on and log is not None:
        from ..obs.atlas import AtlasAccumulator

        atlas = AtlasAccumulator()
        atlas.golden_instructions = golden.instructions
        # Anchoring replays the golden run on the shard machine; the
        # profiler (if any) is already detached, and the next shard's
        # trials restore from checkpoints regardless of machine state.
        atlas.add_campaign(store.machine, log)
    if log is not None and record_path is not None:
        with open(record_path, "w") as handle:
            for record in log.to_dicts():
                handle.write(json.dumps(record, separators=(",", ":")))
                handle.write("\n")
            for record in log.taint_dicts():
                handle.write(json.dumps(record, separators=(",", ":")))
                handle.write("\n")
    return result, profiler, atlas


def _partition(sites: list[FaultSite], shards: int
               ) -> list[tuple[int, list[FaultSite]]]:
    """Split into ``shards`` contiguous (first_trial, sites) chunks."""
    base, extra = divmod(len(sites), shards)
    chunks = []
    lo = 0
    for i in range(shards):
        hi = lo + base + (1 if i < extra else 0)
        if hi > lo:
            chunks.append((lo, sites[lo:hi]))
        lo = hi
    return chunks


def _pool_context():
    """Prefer fork (no program pickling, cheap start) where available."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def default_jobs() -> int:
    """Worker count when the caller asks for ``--jobs 0`` (= all cores)."""
    return max(os.cpu_count() or 1, 1)


def run_parallel_campaign(
    program: Program,
    trials: int = 250,
    seed: int = 0,
    jobs: int = 1,
    max_instructions: int = 10_000_000,
    machine: Machine | None = None,
    log: CampaignLog | None = None,
    checkpoint_interval: int | None = None,
    taint: bool = False,
    sites: list[FaultSite] | None = None,
    profile=None,
    monitor=None,
    jit: bool | None = None,
    atlas=None,
) -> CampaignResult:
    """Run an SEU campaign sharded over ``jobs`` worker processes.

    Bit-identical to :func:`~repro.faults.campaign.run_campaign` with
    the same ``(program, seed, trials)``: the parent pre-samples every
    fault site from the single seeded RNG and workers only execute.
    ``jobs=0`` means one worker per CPU; ``jobs=1`` (or fewer trials
    than would keep two workers busy) falls through to the serial
    runner.  The ``machine`` parameter only spares the parent a
    recompile for its golden run -- workers always compile their own.

    An explicit ``sites`` list (see :func:`run_campaign`) replaces the
    seeded sampling entirely; the campaign is then bit-identical across
    any ``jobs`` for that realized list, which is what lets the
    adaptive runner shard its stratified batches.

    ``taint=True`` traces each fault's dataflow exactly as the serial
    runner does; shard merge keeps both the trial records and the taint
    streams in trial order, so the concatenated ``log`` matches
    ``jobs=1`` record for record.

    A ``profile`` :class:`~repro.obs.profile.SimProfiler` receives the
    parent's golden run plus every shard's trials (worker golden runs
    are excluded), making the merged counts bit-identical to a serial
    profiled campaign.  A ``monitor``
    :class:`~repro.obs.monitor.CampaignMonitor` gets per-shard
    heartbeats streamed into its heartbeat file by the workers, and
    the parent polls them into the live progress line while waiting.

    ``jit`` follows :func:`run_campaign`'s contract (``None`` = on
    unless taint or profile); each worker attaches its own compiled
    JIT, so ``jobs=N`` stays bit-identical to serial either way.

    An ``atlas`` :class:`~repro.obs.atlas.AtlasAccumulator` receives
    every shard's program-anchored tallies, merged in shard (= trial)
    order; because accumulators are integer-only, the merged atlas is
    bit-identical to the one a serial campaign would have produced.
    """
    if taint and log is None and atlas is None:
        raise ValueError("taint tracing requires a CampaignLog "
                         "to receive the event streams")
    if jobs == 0:
        jobs = default_jobs()
    if sites is not None:
        trials = len(sites)
    if jobs <= 1 or trials <= 1:
        return run_campaign(program, trials=trials, seed=seed,
                            max_instructions=max_instructions,
                            machine=machine, log=log,
                            checkpoint_interval=checkpoint_interval,
                            taint=taint, sites=sites,
                            profile=profile, monitor=monitor, jit=jit,
                            atlas=atlas)
    if jit is None:
        jit = not taint and profile is None
    start_time = perf_counter()
    machine = machine or Machine(program, max_instructions=max_instructions)
    saved_jit = machine.jit
    if jit:
        attach_jit(machine)
    else:
        machine.jit = None
    if profile is not None:
        # Profile the parent's golden run (once -- the serial path also
        # counts the golden stream exactly once).
        machine.profile = profile
        if jit:
            profile.annotate_jit(machine)
    try:
        golden = golden_run(machine)
    finally:
        machine.jit = saved_jit
        if profile is not None:
            machine.profile = None
    if golden.status is not RunStatus.EXITED:
        raise SimulationError(
            f"golden run did not complete cleanly: {golden.status}"
        )
    presampled = sites is not None
    if sites is None:
        rng = random.Random(seed)
        sites = [sample_fault_site(rng, golden.instructions)
                 for _ in range(trials)]
    jobs = min(jobs, len(sites))
    chunks = _partition(sites, jobs)
    heartbeat_path = monitor.heartbeat_path if monitor is not None else None
    heartbeat_every = monitor.every if monitor is not None else 16
    if monitor is not None:
        monitor.begin(total=trials)

    shard_dir = None
    record_paths: list[str | None] = [None] * len(chunks)
    if log is not None:
        shard_dir = tempfile.mkdtemp(prefix="repro-campaign-")
        record_paths = [os.path.join(shard_dir, f"shard-{i:04d}.jsonl")
                        for i in range(len(chunks))]
    log_start = len(log.records) if log is not None else 0
    result = CampaignResult(golden_instructions=golden.instructions)
    try:
        with span("campaign.parallel", trials=trials, seed=seed, jobs=jobs):
            context = _pool_context()
            with context.Pool(
                processes=jobs,
                initializer=_init_worker,
                initargs=(program, max_instructions, checkpoint_interval,
                          taint, profile is not None, heartbeat_path,
                          heartbeat_every, jit, atlas is not None),
            ) as pool:
                tasks = [(i, lo, shard, path)
                         for i, ((lo, shard), path)
                         in enumerate(zip(chunks, record_paths))]
                async_result = pool.map_async(_run_shard, tasks)
                while not async_result.ready():
                    async_result.wait(
                        monitor.refresh if monitor is not None else 1.0)
                    if monitor is not None:
                        monitor.shard_progress()
                for shard_result, shard_profile, shard_atlas \
                        in async_result.get():
                    result = result.merged(shard_result)
                    if profile is not None and shard_profile is not None:
                        profile.merge_from(shard_profile)
                    if atlas is not None and shard_atlas is not None:
                        atlas.merge_from(shard_atlas)
        if log is not None:
            # Shards are read in trial order; within each file the trial
            # records precede the taint records, so appending by kind
            # keeps both streams ordered exactly as the serial runner
            # would have produced them.
            for path in record_paths:
                with open(path) as handle:
                    for line in handle:
                        record = json.loads(line)
                        if record.get("kind") == "trial":
                            log.records.append(TrialRecord.from_dict(record))
                        else:
                            log.taint_records.append(record)
    finally:
        if shard_dir is not None:
            shutil.rmtree(shard_dir, ignore_errors=True)
    record_campaign_metrics(result, log, log_start)
    # merged() drops per-shard configs (shards see only their slice);
    # record the campaign-level knobs here, matching the serial path so
    # registry manifests hash identically across --jobs.
    result.config = {
        "fault_model": "register-seu",
        "trials": trials,
        "checkpoint_interval": checkpoint_interval,
        "presampled_sites": presampled,
    }
    # Shard-summed elapsed over-counts concurrent work; report the
    # parent's wall clock for the whole sharded campaign instead.
    result.elapsed_seconds = perf_counter() - start_time
    if monitor is not None:
        monitor.trial_done(result.trials)
    return result
