"""Outcome classification (paper Section 2.1).

A faulty run is compared against the golden (fault-free) run:

* **unACE** -- completed with the correct output: the flipped bit was
  unnecessary for architecturally correct execution (or was repaired by
  a recovery technique before it could matter);
* **SDC**   -- silent data corruption: completed, wrong output (we also
  count a wrong exit code as SDC);
* **SEGV**  -- abnormal termination (segmentation fault; we fold the
  other hardware-trap terminations -- divide-by-zero, bad float
  conversion -- into this category, as the paper's SEGV bucket is
  "execution abnormally terminated");
* **DETECTED** -- a SWIFT check fired (detection without recovery; a DUE
  in the hardware taxonomy).  Only the SWIFT baseline produces these;
* **HANG** -- the instruction budget was exhausted.  The paper's three-way
  taxonomy has no hang bucket; report helpers fold HANG into SDC (the
  program failed to produce its correct output and did not terminate
  abnormally).
"""

from __future__ import annotations

import enum

from ..sim.events import RunResult, RunStatus


class Outcome(enum.Enum):
    UNACE = "unACE"
    SDC = "SDC"
    SEGV = "SEGV"
    DETECTED = "DUE"
    HANG = "Hang"

    @property
    def is_failure(self) -> bool:
        """Deleterious per the paper (SEGV and SDC both are)."""
        return self in (Outcome.SDC, Outcome.SEGV, Outcome.HANG)


def classify(golden: RunResult, faulty: RunResult) -> Outcome:
    """Classify one faulty run against the golden run."""
    if faulty.status is RunStatus.TRAPPED:
        return Outcome.SEGV
    if faulty.status is RunStatus.DETECTED:
        return Outcome.DETECTED
    if faulty.status is RunStatus.HANG:
        return Outcome.HANG
    if faulty.status is not RunStatus.EXITED:
        raise ValueError(f"unclassifiable run status {faulty.status}")
    if faulty.output == golden.output and faulty.exit_code == golden.exit_code:
        return Outcome.UNACE
    return Outcome.SDC
