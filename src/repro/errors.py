"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting genuine bugs (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class IRError(ReproError):
    """Malformed intermediate representation."""


class VerificationError(IRError):
    """The IR verifier found a structural violation."""


class ParseError(ReproError):
    """Textual assembly or mini-C source could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}:{column}: {message}"
        super().__init__(message)


class SemanticError(ReproError):
    """Mini-C semantic analysis failure (type error, undefined name, ...)."""

    def __init__(self, message: str, line: int = 0) -> None:
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class CodegenError(ReproError):
    """Mini-C code generation failure."""


class TransformError(ReproError):
    """A protection pass could not be applied."""


class RegisterAllocationError(ReproError):
    """Register allocation failed (e.g. unsatisfiable constraints)."""


class SimulationError(ReproError):
    """The simulator reached an illegal state that is a *library* bug.

    Note that guest-program failures (segmentation faults, division by
    zero) are *not* exceptions: they are outcomes, reported via
    :class:`repro.sim.machine.RunResult`.
    """


class WorkloadError(ReproError):
    """A benchmark workload is misconfigured."""
