"""Escape forensics and Chrome trace export."""

import json

import pytest

from repro.faults import run_campaign
from repro.lang import compile_source
from repro.obs import (
    CampaignLog,
    JsonlSink,
    MECHANISMS,
    analyze_log,
    analyze_records,
    chrome_trace,
    classify_trial,
    export_trace_path,
    forensics_path,
    read_jsonl,
    render_report,
)
from repro.obs import spans
from repro.transform import Technique, allocate_program, protect
from repro.__main__ import main as cli_main

#: A second workload (beyond the conftest IR program): array init plus
#: a reduction, so faults can escape through stores and output alike.
SECOND_WORKLOAD = """
int main() {
  int data[8];
  int total = 0;
  for (int i = 0; i < 8; i++) { data[i] = i * 3 + 1; }
  for (int i = 0; i < 8; i++) { total += data[i]; }
  print(total);
  return 0;
}
"""


@pytest.fixture(autouse=True)
def clean_obs_state():
    spans.disable()
    spans.collector().clear()
    yield
    spans.disable()
    spans.collector().clear()


def _trial(outcome, landed=True, trial=0):
    return {"kind": "trial", "trial": trial, "outcome": outcome,
            "fault_landed": landed}


def _summary(counts=None, **firsts):
    record = {"kind": "taint_summary", "counts": counts or {},
              "first_escape": None, "first_control": None,
              "first_wild": None, "first_repair": None}
    record.update(firsts)
    return record


# --------------------------------------------------------- classification
def test_classify_structural_cases():
    assert classify_trial(_trial("unACE", landed=False),
                          None)["mechanism"] == "never-landed"
    assert classify_trial(_trial("SDC"), None)["mechanism"] == "no-taint-data"
    assert classify_trial(_trial("DUE"),
                          _summary())["mechanism"] == "detected-by-check"


def test_classify_sdc_picks_earliest_event():
    stored = {"event": "stored", "icount": 50, "instr": "store"}
    branched = {"event": "branched", "icount": 20, "instr": "blt"}
    out = classify_trial(_trial("SDC"),
                         _summary(first_escape=stored,
                                  first_control=branched))
    assert out["mechanism"] == "control-divergence"   # 20 < 50
    assert out["event"] is branched
    out = classify_trial(_trial("SDC"), _summary(first_escape=stored))
    assert out["mechanism"] == "escaped-via-store"
    printed = {"event": "escaped-to-output", "icount": 9, "instr": "print"}
    out = classify_trial(_trial("SDC"), _summary(first_escape=printed))
    assert out["mechanism"] == "escaped-via-output"
    assert classify_trial(_trial("SDC"),
                          _summary())["mechanism"] == "unattributed"


def test_classify_segv_and_hang():
    wild = {"event": "wild-address", "icount": 5}
    assert classify_trial(_trial("SEGV"), _summary(first_wild=wild)
                          )["mechanism"] == "wild-address-trap"
    branched = {"event": "branched", "icount": 3}
    assert classify_trial(_trial("SEGV"), _summary(first_control=branched)
                          )["mechanism"] == "control-divergence"
    assert classify_trial(_trial("SEGV"),
                          _summary())["mechanism"] == "trapped"
    assert classify_trial(_trial("Hang"), _summary(first_control=branched)
                          )["mechanism"] == "control-divergence"
    assert classify_trial(_trial("Hang"), _summary())["mechanism"] == "hung"


def test_classify_unace_mechanisms():
    vote = {"event": "voted-out", "icount": 8}
    assert classify_trial(_trial("unACE"), _summary(first_repair=vote)
                          )["mechanism"] == "repaired-by-vote"
    repair = {"event": "repaired", "icount": 8}
    assert classify_trial(_trial("unACE"), _summary(first_repair=repair)
                          )["mechanism"] == "detected-by-ancheck"
    assert classify_trial(_trial("unACE"), _summary({"masked": 2})
                          )["mechanism"] == "squashed-by-mask"
    assert classify_trial(_trial("unACE"), _summary({"overwritten": 1})
                          )["mechanism"] == "dead-value-overwritten"
    assert classify_trial(_trial("unACE"), _summary({"created": 1})
                          )["mechanism"] == "dead-value-unread"
    assert classify_trial(_trial("unACE"), _summary({"propagated": 3})
                          )["mechanism"] == "benign-residual-taint"


# ----------------------------------------------------- campaign attribution
@pytest.mark.parametrize("technique", [Technique.SWIFTR, Technique.TRUMP])
def test_full_attribution_two_workloads(simple_program, technique):
    """Every landed trial gets a mechanism; every SDC names its escape
    instruction -- on both workloads, for both recovery techniques."""
    second = compile_source(SECOND_WORKLOAD)
    for name, program in (("simple", simple_program),
                          ("reduce", second)):
        binary = allocate_program(protect(program, technique))
        log = CampaignLog(context={"benchmark": name,
                                   "technique": technique.value})
        run_campaign(binary, trials=80, seed=2006, log=log, taint=True)
        report = analyze_log(log)
        attributions = report.attributions
        assert len(attributions) == 80
        for attribution in attributions:
            assert attribution["mechanism"] in MECHANISMS
            if attribution["mechanism"] != "never-landed":
                assert attribution["mechanism"] not in (
                    "unattributed", "no-taint-data"), attribution
            if attribution["outcome"] == "SDC":
                assert attribution["event"] is not None, attribution
                assert attribution["event"].get("instr"), attribution


def test_recovery_techniques_show_their_mechanism(simple_program):
    second = compile_source(SECOND_WORKLOAD)
    swiftr = allocate_program(protect(second, Technique.SWIFTR))
    log = CampaignLog(context={"technique": "swiftr"})
    run_campaign(swiftr, trials=120, seed=0, log=log, taint=True)
    counts = analyze_log(log).mechanism_counts()
    assert counts.get("repaired-by-vote", 0) >= 1
    trump = allocate_program(protect(simple_program, Technique.TRUMP))
    log = CampaignLog(context={"technique": "trump"})
    run_campaign(trump, trials=120, seed=7, log=log, taint=True)
    counts = analyze_log(log).mechanism_counts()
    assert counts.get("detected-by-ancheck", 0) >= 1


def test_groups_keep_cells_apart(simple_program):
    second = compile_source(SECOND_WORKLOAD)
    records = []
    for name, program in (("a", simple_program), ("b", second)):
        binary = allocate_program(protect(program, Technique.SWIFTR))
        log = CampaignLog(context={"benchmark": name,
                                   "technique": "swiftr"})
        run_campaign(binary, trials=30, seed=1, log=log, taint=True)
        records += log.to_dicts() + log.taint_dicts()
    report = analyze_records(records)
    assert sorted(report.groups) == ["a/swiftr", "b/swiftr"]
    assert all(len(members) == 30 for members in report.groups.values())
    rendered = render_report(report)
    assert "a/swiftr: 30 trials" in rendered
    assert "b/swiftr: 30 trials" in rendered


def test_render_report_names_escapes(simple_program):
    second = compile_source(SECOND_WORKLOAD)
    binary = allocate_program(second)       # unprotected: failures exist
    log = CampaignLog(context={"technique": "noft"})
    run_campaign(binary, trials=120, seed=4, log=log, taint=True)
    report = analyze_log(log)
    assert report.escapes(), "NOFT at 120 trials should fail sometimes"
    rendered = render_report(report)
    assert "failure forensics" in rendered
    assert "mechanism" in rendered
    assert render_report(analyze_records([])) == "(no trial records)"


# ------------------------------------------------- extension fault models
def test_extension_sites_share_trial_schema(simple_program):
    """Wild-jump and opcode sites have no register/bit coordinates;
    record_trial normalizes them to -1 so one schema covers all."""
    from repro.faults.controlflow_faults import (
        WildJumpSite,
        run_with_wild_jump,
    )
    from repro.faults.injector import golden_run
    from repro.faults.opcode_faults import (
        OpcodeFaultInjector,
        OpcodeFaultSite,
    )
    from repro.faults.outcomes import classify
    from repro.sim import Machine

    binary = allocate_program(simple_program)
    machine = Machine(binary)
    golden = golden_run(machine)

    log = CampaignLog(context={"technique": "noft"})
    wild_site = WildJumpSite(dynamic_index=5, target_seed=99)
    faulty = run_with_wild_jump(machine, wild_site)
    log.record_trial(0, wild_site, classify(golden, faulty), faulty)

    injector = OpcodeFaultInjector(binary)
    opcode_site = OpcodeFaultSite(dynamic_index=7, bit=3)
    faulty = injector.run_with_fault(opcode_site)
    log.record_trial(1, opcode_site, classify(golden, faulty), faulty)

    # A site past the end of the golden run never lands.
    late_site = WildJumpSite(dynamic_index=golden.instructions + 10,
                             target_seed=0)
    faulty = run_with_wild_jump(machine, late_site)
    log.record_trial(2, late_site, classify(golden, faulty), faulty)

    records = log.to_dicts()
    wild, opcode, late = records
    assert wild["reg_index"] == -1 and wild["bit"] == -1
    assert opcode["reg_index"] == -1 and opcode["bit"] == 3
    assert wild["fault_landed"] and opcode["fault_landed"]
    assert not late["fault_landed"]

    # Forensics classifies the extension kinds with the same taxonomy:
    # structural mechanisms without taint data, never-landed past-end.
    report = analyze_records(records)
    attributions = report.attributions
    assert len(attributions) == 3
    assert all(a["mechanism"] in MECHANISMS for a in attributions)
    by_trial = {a["trial"]: a for a in attributions}
    assert by_trial[2]["mechanism"] == "never-landed"
    for trial in (0, 1):
        assert by_trial[trial]["mechanism"] in (
            "no-taint-data",            # landed, failed or silent
            "detected-by-check",        # DUE needs no taint events
            "never-landed",
        ) or by_trial[trial]["outcome"] == "unACE"


def test_extension_campaigns_full_attribution(simple_program):
    """Whole extension campaigns re-logged trial by trial classify
    cleanly: every record gets a mechanism, DUEs are attributed even
    without taint, and outcome counts match the campaign's own."""
    from repro.faults.controlflow_faults import (
        WildJumpSite,
        run_with_wild_jump,
    )
    from repro.faults.injector import golden_run
    from repro.faults.outcomes import classify
    from repro.sim import Machine

    import random

    binary = allocate_program(protect(simple_program, Technique.SWIFTR))
    machine = Machine(binary)
    golden = golden_run(machine)
    log = CampaignLog(context={"technique": "swiftr",
                               "benchmark": "wild-jump"})
    rng = random.Random(17)
    outcomes = {}
    for trial in range(40):
        site = WildJumpSite(dynamic_index=rng.randrange(golden.instructions),
                            target_seed=rng.getrandbits(32))
        faulty = run_with_wild_jump(machine, site)
        outcome = classify(golden, faulty)
        outcomes[outcome.value] = outcomes.get(outcome.value, 0) + 1
        log.record_trial(trial, site, outcome, faulty)

    report = analyze_records(log.to_dicts())
    assert list(report.groups) == ["wild-jump/swiftr"]
    counted = {}
    for attribution in report.attributions:
        assert attribution["mechanism"] in MECHANISMS
        counted[attribution["outcome"]] = \
            counted.get(attribution["outcome"], 0) + 1
        if attribution["outcome"] == "DUE":
            assert attribution["mechanism"] == "detected-by-check"
    assert counted == outcomes
    assert "mechanism" in render_report(report)


# ------------------------------------------------------------ trace export
def _taint_records(simple_program):
    binary = allocate_program(protect(simple_program, Technique.SWIFTR))
    log = CampaignLog(context={"technique": "swiftr"})
    spans.enable()
    with spans.span("campaign.test"):
        run_campaign(binary, trials=30, seed=2, log=log, taint=True)
    span_dicts = [s.to_dict() for s in spans.collector().drain()]
    return log.to_dicts() + log.taint_dicts() + span_dicts


def test_chrome_trace_is_structurally_valid(simple_program):
    records = _taint_records(simple_program)
    trace = chrome_trace(records)
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    events = trace["traceEvents"]
    assert isinstance(events, list) and events
    phases = {"X": 0, "i": 0, "M": 0}
    for event in events:
        assert event["ph"] in phases
        phases[event["ph"]] += 1
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert isinstance(event["ts"], (int, float))
        assert "name" in event
        if event["ph"] == "X":
            assert event["dur"] >= 0
        if event["ph"] == "i":
            assert event["s"] == "t"
        assert json.loads(json.dumps(event)) == event
    assert phases["M"] == 2              # both process rows are named
    assert phases["X"] >= 30             # one duration event per trial
    assert phases["i"] >= 1              # taint instants present


def test_export_trace_path_round_trips(tmp_path, simple_program):
    records = _taint_records(simple_program)
    src = str(tmp_path / "t.jsonl")
    with JsonlSink(src) as sink:
        sink.write_many(records)
    out = str(tmp_path / "t.trace.json")
    count = export_trace_path(src, out)
    with open(out) as handle:
        doc = json.load(handle)
    assert len(doc["traceEvents"]) == count
    names = {e["name"] for e in doc["traceEvents"]}
    assert "campaign.test" in names      # wall-clock span made it over


# -------------------------------------------------------------------- CLI
def test_cli_forensics_and_export_trace(tmp_path, capsys):
    source = tmp_path / "demo.c"
    source.write_text(SECOND_WORKLOAD)
    path = str(tmp_path / "t.jsonl")
    assert cli_main(["campaign", str(source), "-t", "swiftr",
                     "--trials", "60", "--taint",
                     "--telemetry", path]) == 0
    out = capsys.readouterr().out
    assert "mechanism" in out            # forensics printed inline
    records = read_jsonl(path)
    kinds = {r["kind"] for r in records}
    assert "taint" in kinds and "taint_summary" in kinds

    assert cli_main(["obs", "forensics", path]) == 0
    rendered = capsys.readouterr().out
    assert "trials" in rendered and "mechanism" in rendered

    trace_out = str(tmp_path / "t.trace.json")
    assert cli_main(["obs", "export-trace", path, "-o", trace_out]) == 0
    with open(trace_out) as handle:
        doc = json.load(handle)
    assert doc["traceEvents"]


def test_cli_taint_without_telemetry(tmp_path, capsys):
    source = tmp_path / "demo.c"
    source.write_text(SECOND_WORKLOAD)
    assert cli_main(["campaign", str(source), "-t", "trump",
                     "--trials", "40", "--taint"]) == 0
    out = capsys.readouterr().out
    assert "mechanism" in out
