"""SEU model, injection, classification, campaigns, statistics."""

import random

import pytest

from repro.faults import (
    CampaignResult,
    FaultSite,
    INJECTABLE_GPRS,
    Outcome,
    Proportion,
    classify,
    geometric_mean,
    golden_run,
    run_campaign,
    run_sites,
    run_with_fault,
    sample_fault_site,
    sample_sites,
)
from repro.sim import Machine, RunResult, RunStatus, TrapKind


# ------------------------------------------------------------------- model
def test_stack_pointer_excluded():
    assert 1 not in INJECTABLE_GPRS
    assert len(INJECTABLE_GPRS) == 31
    with pytest.raises(ValueError):
        FaultSite(dynamic_index=0, reg_index=1, bit=0)


def test_site_validation():
    with pytest.raises(ValueError):
        FaultSite(dynamic_index=0, reg_index=2, bit=64)
    with pytest.raises(ValueError):
        FaultSite(dynamic_index=-1, reg_index=2, bit=0)


def test_sampling_uniform_bounds():
    rng = random.Random(7)
    for _ in range(500):
        site = sample_fault_site(rng, 1000)
        assert 0 <= site.dynamic_index < 1000
        assert site.reg_index in INJECTABLE_GPRS
        assert 0 <= site.bit < 64


def test_sampling_deterministic():
    assert sample_sites(42, 500, 20) == sample_sites(42, 500, 20)
    assert sample_sites(42, 500, 20) != sample_sites(43, 500, 20)


def test_sampling_requires_positive_length():
    with pytest.raises(ValueError):
        sample_fault_site(random.Random(0), 0)


# ---------------------------------------------------------------- classify
def _result(status, output=(), exit_code=0):
    return RunResult(status, exit_code=exit_code, output=list(output))


GOLDEN = _result(RunStatus.EXITED, [1, 2, 3])


def test_classify_unace():
    assert classify(GOLDEN, _result(RunStatus.EXITED, [1, 2, 3])) \
        is Outcome.UNACE


def test_classify_sdc_wrong_output():
    assert classify(GOLDEN, _result(RunStatus.EXITED, [1, 2, 4])) \
        is Outcome.SDC


def test_classify_sdc_wrong_exit_code():
    faulty = _result(RunStatus.EXITED, [1, 2, 3], exit_code=9)
    assert classify(GOLDEN, faulty) is Outcome.SDC


def test_classify_segv():
    faulty = RunResult(RunStatus.TRAPPED, trap_kind=TrapKind.SEGFAULT)
    assert classify(GOLDEN, faulty) is Outcome.SEGV


def test_classify_detected_and_hang():
    assert classify(GOLDEN, _result(RunStatus.DETECTED)) is Outcome.DETECTED
    assert classify(GOLDEN, _result(RunStatus.HANG)) is Outcome.HANG


def test_failure_flags():
    assert Outcome.SDC.is_failure and Outcome.SEGV.is_failure
    assert Outcome.HANG.is_failure
    assert not Outcome.UNACE.is_failure
    assert not Outcome.DETECTED.is_failure


# ---------------------------------------------------------------- injector
def test_injection_is_exact(simple_program):
    machine = Machine(simple_program)
    golden = golden_run(machine)
    # A fault injected past the end of execution never lands.
    site = FaultSite(dynamic_index=golden.instructions + 100,
                     reg_index=5, bit=3)
    result = run_with_fault(machine, site)
    assert result.output == golden.output


def test_injection_flips_exactly_one_bit(simple_program):
    machine = Machine(simple_program)
    golden_run(machine)
    machine.reset()
    machine.run(5)
    before = list(machine.regs[:32])
    machine.flip_register_bit(7, 22)
    after = list(machine.regs[:32])
    diffs = [(i, b ^ a) for i, (b, a) in enumerate(zip(before, after))
             if b != a]
    assert diffs == [(7, 1 << 22)]


# ---------------------------------------------------------------- campaign
def test_campaign_deterministic(simple_program):
    first = run_campaign(simple_program, trials=60, seed=11)
    second = run_campaign(simple_program, trials=60, seed=11)
    assert first.counts == second.counts
    assert first.trials == 60
    assert sum(first.counts.values()) == 60


def test_campaign_seed_changes_results(simple_program):
    # Different seeds explore different sites (counts usually differ;
    # at minimum the campaigns must be independent objects).
    a = run_campaign(simple_program, trials=80, seed=1)
    b = run_campaign(simple_program, trials=80, seed=2)
    assert a.trials == b.trials == 80


def test_campaign_percentages_sum(simple_program):
    campaign = run_campaign(simple_program, trials=50, seed=3)
    total = (campaign.unace_percent + campaign.sdc_percent
             + campaign.segv_percent + campaign.detected_percent)
    assert total == pytest.approx(100.0)


def test_campaign_merge(simple_program):
    a = run_campaign(simple_program, trials=30, seed=1)
    b = run_campaign(simple_program, trials=30, seed=2)
    merged = a.merged(b)
    assert merged.trials == 60
    for outcome in Outcome:
        assert merged.count(outcome) == a.count(outcome) + b.count(outcome)


def test_run_sites_explicit(simple_program):
    sites = sample_sites(5, 40, 10)
    outcomes = run_sites(simple_program, sites)
    assert len(outcomes) == 10
    assert all(isinstance(o, Outcome) for o in outcomes)


def test_run_sites_reuses_machine(simple_program):
    sites = sample_sites(5, 40, 10)
    machine = Machine(simple_program)
    outcomes = run_sites(simple_program, sites, machine=machine)
    assert outcomes == run_sites(simple_program, sites)


def test_run_sites_rejects_failing_golden_run():
    from repro.errors import SimulationError
    from repro.isa import Function, IRBuilder, Program

    program = Program()
    fn = Function("main")
    program.add_function(fn)
    b = IRBuilder(fn)
    b.start_block("entry")
    addr = b.li(12345)              # unmapped address: golden run traps
    b.load(addr)
    b.ret()
    sites = sample_sites(5, 40, 3)
    with pytest.raises(SimulationError):
        run_sites(program, sites)


# ------------------------------------------------------------------- stats
def test_proportion_basicss():
    p = Proportion(25, 100)
    assert p.value == 0.25
    assert p.percent == 25.0
    low, high = p.wilson_interval()
    assert 0.15 < low < 0.25 < high < 0.40


def test_proportion_edge_cases():
    assert Proportion(0, 0).value == 0.0
    low, high = Proportion(0, 0).wilson_interval()
    assert (low, high) == (0.0, 1.0)
    low, high = Proportion(10, 10).wilson_interval()
    assert high == 1.0 and low > 0.6


def test_geometric_mean():
    assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
    assert geometric_mean([1.0, 1.0, 1.0]) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1.0, 0.0])
