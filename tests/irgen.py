"""Random (but always well-defined) IR program generation for tests.

The generator produces programs that are *semantically safe by
construction* -- no division by zero, no invalid memory accesses, no
unbounded loops -- so that any behavioural difference between two
builds of the same program (pre/post register allocation, pre/post
scheduling, protected/unprotected) is a genuine transformation bug.
"""

from __future__ import annotations

import random

from repro.isa import Function, IRBuilder, Imm, Program


def random_program(seed: int, num_blocks: int = 4,
                   instrs_per_block: int = 12) -> Program:
    """A random structured program printing a final checksum.

    The CFG is a chain of blocks, each optionally guarded by a bounded
    loop; the instruction mix covers arithmetic, logical, shift,
    compare, memory, and move operations over a scratch global array.
    """
    rng = random.Random(seed)
    program = Program()
    program.add_global("scratch", 32, [rng.randrange(1000) for _ in range(32)])
    fn = Function("main")
    program.add_function(fn)
    builder = IRBuilder(fn)
    builder.start_block("entry")
    program.assign_addresses()
    base = builder.li(program.address_of("scratch"))

    # A pool of live registers to draw operands from.
    live = [builder.li(rng.randrange(-100, 100)) for _ in range(6)]

    def operand():
        if rng.random() < 0.25:
            return Imm(rng.randrange(-64, 64))
        return rng.choice(live)

    def add_result(reg) -> None:
        live.append(reg)
        if len(live) > 10:
            live.pop(0)

    for block_index in range(num_blocks):
        loop = rng.random() < 0.5
        if loop:
            counter = builder.li(0)
            loop_label = f"loop{block_index}"
            builder.jmp(loop_label)
            builder.start_block(loop_label)
        for _ in range(instrs_per_block):
            choice = rng.random()
            if choice < 0.35:
                op = rng.choice(
                    [builder.add, builder.sub, builder.mul]
                )
                add_result(op(rng.choice(live), operand()))
            elif choice < 0.55:
                op = rng.choice(
                    [builder.and_, builder.or_, builder.xor]
                )
                add_result(op(rng.choice(live), operand()))
            elif choice < 0.65:
                op = rng.choice([builder.shl, builder.shr, builder.sra])
                add_result(op(rng.choice(live), Imm(rng.randrange(0, 8))))
            elif choice < 0.75:
                op = rng.choice(
                    [builder.cmpeq, builder.cmplt, builder.cmpge]
                )
                add_result(op(rng.choice(live), operand()))
            elif choice < 0.85:
                # Safe load: index within the scratch array.
                index = builder.and_(rng.choice(live), 31)
                offset = builder.shl(index, 3)
                address = builder.add(base, offset)
                add_result(builder.load(address))
            elif choice < 0.95:
                index = builder.and_(rng.choice(live), 31)
                offset = builder.shl(index, 3)
                address = builder.add(base, offset)
                builder.store(address, rng.choice(live))
            else:
                # Safe signed division by a non-zero constant.
                add_result(builder.div(rng.choice(live),
                                       Imm(rng.choice([1, 2, 3, 5, 7]))))
        if loop:
            builder.add(counter, 1, dest=counter)
            builder.blt(counter, rng.randrange(2, 5), loop_label)
            builder.start_block(f"after{block_index}")
        else:
            next_label = f"blk{block_index}"
            builder.jmp(next_label)
            builder.start_block(next_label)
    # Fold every live register into one checksum and print it.
    checksum = builder.li(0)
    for reg in live:
        folded = builder.xor(checksum, reg)
        checksum = builder.add(folded, Imm(1), dest=checksum)
    builder.print_(checksum)
    # Also print a digest of the scratch array so stores matter.
    total = builder.li(0)
    index = builder.li(0)
    builder.jmp("digest")
    builder.start_block("digest")
    offset = builder.shl(index, 3)
    address = builder.add(base, offset)
    value = builder.load(address)
    mixed = builder.xor(total, value)
    builder.add(mixed, Imm(0), dest=total)
    builder.add(index, 1, dest=index)
    builder.blt(index, 32, "digest")
    builder.start_block("done")
    builder.print_(total)
    builder.ret()
    fn.renumber_pool()
    return program
