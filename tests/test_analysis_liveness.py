"""Liveness analysis and def-use information."""

from repro.analysis import DefUse, DependenceWebs, Liveness
from repro.isa import Function, IRBuilder


def test_straight_line_liveness():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    x = b.li(1)
    y = b.li(2)
    z = b.add(x, y)
    b.print_(z)
    b.ret()
    live = Liveness(fn)
    assert live.live_in["entry"] == frozenset()
    assert live.live_out["entry"] == frozenset()
    per_instr = live.per_instruction_live_out(fn.entry)
    # After the add, only z matters.
    assert per_instr[2] == frozenset({z})
    # After li x, x is live (y not yet defined).
    assert x in per_instr[0]


def test_loop_carried_liveness():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    i = b.li(0)
    total = b.li(0)
    b.jmp("loop")
    b.start_block("loop")
    b.add(total, i, dest=total)
    b.add(i, 1, dest=i)
    b.blt(i, 10, "loop")
    b.start_block("exit")
    b.print_(total)
    b.ret()
    live = Liveness(fn)
    assert i in live.live_in["loop"]
    assert total in live.live_in["loop"]
    assert total in live.live_out["loop"]
    assert total in live.live_in["exit"]
    assert i not in live.live_in["exit"]


def test_live_through_block():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    keep = b.li(42)
    tmp = b.li(1)
    b.jmp("mid")
    b.start_block("mid")
    t2 = b.add(tmp, 1)
    b.print_(t2)
    b.jmp("end")
    b.start_block("end")
    b.print_(keep)
    b.ret()
    live = Liveness(fn)
    assert keep in live.live_through_block(fn.block("mid"))
    assert tmp not in live.live_through_block(fn.block("end"))


def test_defuse_collects_sites():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    x = b.li(1)
    y = b.add(x, x)
    b.add(y, 1, dest=y)
    b.print_(y)
    b.ret()
    du = DefUse.of(fn)
    assert len(du.defs_of(x)) == 1
    assert len(du.defs_of(y)) == 2
    assert len(du.uses_of(x)) == 2  # one instruction, two operand slots
    assert len(set(du.uses_of(x))) == 1
    assert len(du.uses_of(y)) == 2
    assert x in du.registers() and y in du.registers()


def test_dependence_webs():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    a = b.li(1)
    bb = b.add(a, 1)
    c = b.li(5)       # independent chain
    d = b.mul(c, 3)
    b.print_(bb)
    b.print_(d)
    b.ret()
    webs = DependenceWebs(fn)
    assert webs.same_web(a, bb)
    assert webs.same_web(c, d)
    assert not webs.same_web(a, d)
    groups = webs.webs()
    assert any({a, bb} <= g for g in groups)
