"""Campaign-as-a-service: specs, queue semantics, workers, and the
live server (cache hits, cancellation, restart re-queue, fetch
byte-identity)."""

import json
import os
import time

import pytest

from repro.obs.registry import RunRegistry
from repro.serve.client import ServiceClient, ServiceError
from repro.serve.protocol import pack_bytes, unpack_bytes
from repro.serve.queue import (
    CACHED,
    CANCELLED,
    DONE,
    JobQueue,
    JobSpool,
    QUEUED,
    QueueError,
    RateLimitError,
    RUNNING,
)
from repro.serve.server import CampaignServer
from repro.serve.spec import (
    CampaignSpec,
    SpecError,
    find_cached,
    prepare_spec,
    run_spec,
    store_spec_run,
)
from repro.serve.workers import execute_spec_job
from repro.__main__ import main as cli_main

TINY_SOURCE = """\
int main() {
  int a = 3;
  int b = 4;
  print(a * b + 30);
  return 0;
}
"""


@pytest.fixture
def tiny_c(tmp_path):
    path = tmp_path / "tiny.c"
    path.write_text(TINY_SOURCE)
    return str(path)


def _spec(**overrides):
    base = dict(source_text=TINY_SOURCE, technique="swiftr", seed=7,
                trials=20)
    base.update(overrides)
    return CampaignSpec(**base)


# ------------------------------------------------------------------ specs
def test_spec_requires_exactly_one_program_axis():
    with pytest.raises(SpecError):
        CampaignSpec(technique="swiftr")          # no program at all
    with pytest.raises(SpecError):
        CampaignSpec(workload="crc32", source="x.c")


def test_spec_validates_fields():
    with pytest.raises(SpecError):
        CampaignSpec(technique="nope", workload="crc32")
    with pytest.raises(SpecError):
        CampaignSpec(workload="not-a-workload")
    with pytest.raises(SpecError):
        _spec(fault_model="cosmic-ray")
    with pytest.raises(SpecError):
        _spec(seed=True)                          # bools are not seeds
    with pytest.raises(SpecError):
        _spec(trials=0)
    with pytest.raises(SpecError):
        _spec(adaptive=True, metric="nope")
    with pytest.raises(SpecError):
        _spec(adaptive=True, ci_width=1.5)
    with pytest.raises(SpecError):
        _spec(jobs=-1)


def test_spec_from_dict_rejects_unknown_keys_and_non_dicts():
    with pytest.raises(SpecError):
        CampaignSpec.from_dict({"workload": "crc32", "bogus": 1})
    with pytest.raises(SpecError):
        CampaignSpec.from_dict(["not", "a", "dict"])


def test_spec_dict_round_trip_omits_defaults():
    spec = _spec()
    wire = spec.to_dict()
    assert wire["technique"] == "swiftr"
    assert "trials" not in wire or wire["trials"] != 250
    assert "ci_width" not in wire            # default stays implicit
    assert CampaignSpec.from_dict(wire) == spec


def test_spec_key_ignores_jobs_but_not_results_axes():
    assert _spec(jobs=1).spec_key() == _spec(jobs=4).spec_key()
    assert _spec(seed=8).spec_key() != _spec(seed=7).spec_key()
    assert _spec().spec_key() != _spec(adaptive=True).spec_key()
    # Adaptive identity drops trials; fixed identity drops the knobs.
    assert (_spec(adaptive=True, trials=20).spec_key()
            == _spec(adaptive=True, trials=99).spec_key())


def test_workload_dict_matches_direct_cli_conventions(tiny_c):
    assert CampaignSpec(workload="crc32").workload_dict() == {
        "benchmark": "crc32"}
    assert CampaignSpec(source=tiny_c).workload_dict() == {
        "source": tiny_c}
    inline = _spec().workload_dict()
    assert inline["source"].startswith("text:")


def test_prepare_spec_reports_missing_source():
    with pytest.raises(SpecError):
        prepare_spec(CampaignSpec(source="/no/such/file.c"))


# --------------------------------------------------------------- run_spec
def test_run_spec_matches_direct_campaign():
    from repro.faults import run_campaign

    spec = _spec()
    program, machine = prepare_spec(spec)
    served = run_spec(spec, program, machine=machine).result
    direct = run_campaign(program, trials=spec.trials, seed=spec.seed)
    assert served.summary_dict() == direct.summary_dict()
    assert served.config == direct.config


def test_run_spec_adaptive_rejects_incompatible_hooks():
    spec = _spec(adaptive=True, max_trials=50)
    program, _ = prepare_spec(spec)
    with pytest.raises(SpecError):
        run_spec(spec, program, taint=True)
    with pytest.raises(SpecError):
        run_spec(spec, program, profile=object())


# ------------------------------------------------------------ cache probe
def test_find_cached_round_trip(tmp_path):
    from repro.obs import CampaignLog

    registry = RunRegistry(str(tmp_path / "runs"))
    spec = _spec()
    program, machine = prepare_spec(spec)
    assert find_cached(registry, spec, program) is None
    log = CampaignLog(context=spec.log_context())
    run = run_spec(spec, program, machine=machine, log=log)
    stored = store_spec_run(registry, spec, run, program, log)
    assert stored.created
    assert find_cached(registry, spec, program) == stored.run_id
    # A different seed (or budget) is a different campaign: no hit.
    assert find_cached(registry, _spec(seed=8), program) is None
    assert find_cached(registry, _spec(trials=21), program) is None


def test_find_cached_adaptive_round_trip(tmp_path):
    from repro.obs import CampaignLog

    registry = RunRegistry(str(tmp_path / "runs"))
    spec = _spec(adaptive=True, max_trials=60)
    program, machine = prepare_spec(spec)
    log = CampaignLog(context=spec.log_context())
    run = run_spec(spec, program, machine=machine, log=log)
    stored = store_spec_run(registry, spec, run, program, log)
    assert find_cached(registry, spec, program) == stored.run_id
    assert find_cached(registry, _spec(adaptive=True, max_trials=61),
                       program) is None


# ---------------------------------------------------------------- queue
def test_queue_fifo_within_priority():
    queue = JobQueue()
    low1 = queue.submit(_spec(seed=1))
    high = queue.submit(_spec(seed=2), priority=5)
    low2 = queue.submit(_spec(seed=3))
    assert queue.position(high.id) == 1
    assert [queue.next_job().id for _ in range(3)] == [
        high.id, low1.id, low2.id]
    assert queue.next_job() is None


def test_queue_rate_limit_is_per_client():
    queue = JobQueue(max_pending=2)
    queue.submit(_spec(seed=1), client="alice")
    queue.submit(_spec(seed=2), client="alice")
    with pytest.raises(RateLimitError) as info:
        queue.submit(_spec(seed=3), client="alice")
    assert info.value.client == "alice" and info.value.limit == 2
    queue.submit(_spec(seed=4), client="bob")   # other clients unharmed
    # Replay path bypasses the limit: accepted jobs never re-reject.
    queue.submit(_spec(seed=5), client="alice", enforce_limit=False)


def test_queue_cancel_queued_and_running():
    queue = JobQueue()
    queued = queue.submit(_spec(seed=1))
    running = queue.submit(_spec(seed=2))
    first = queue.next_job()
    assert first.id == queued.id and first.state == RUNNING
    assert queue.cancel(running.id) == QUEUED
    assert queue.cancel(first.id) == RUNNING
    assert queue.next_job() is None             # lazy deletion skips
    with pytest.raises(QueueError):
        queue.cancel(queued.id)                 # already terminal


def test_queue_finish_and_counts():
    queue = JobQueue()
    job = queue.submit(_spec())
    queue.next_job()
    queue.finish(job.id, state=DONE, run_id="abc123")
    assert queue.get(job.id).run_id == "abc123"
    assert queue.counts() == {DONE: 1}
    cached = queue.submit(_spec(seed=9))
    queue.mark_cached(cached.id, "def456")
    assert queue.get(cached.id).state == CACHED
    assert queue.get(cached.id).public_dict()["cached"] is True


# ---------------------------------------------------------------- spool
def test_spool_replay_returns_accepted_but_unfinished(tmp_path):
    spool = JobSpool(str(tmp_path / "spool.jsonl"))
    queue = JobQueue()
    done = queue.submit(_spec(seed=1))
    open_job = queue.submit(_spec(seed=2), priority=3, client="ci")
    spool.record_accepted(done)
    spool.record_accepted(open_job)
    queue.next_job()
    queue.finish(done.id, state=DONE, run_id="abc")
    spool.record_finished(done)
    survivors = spool.replay()
    assert [e["job"] for e in survivors] == [open_job.id]
    assert survivors[0]["priority"] == 3
    assert survivors[0]["client"] == "ci"
    assert CampaignSpec.from_dict(survivors[0]["spec"]) == open_job.spec


def test_spool_tolerates_torn_lines_and_bad_specs(tmp_path):
    path = tmp_path / "spool.jsonl"
    good = {"kind": "job_accepted", "job": "j1",
            "spec": _spec().to_dict()}
    bad_spec = {"kind": "job_accepted", "job": "j2",
                "spec": {"workload": "gone-workload"}}
    path.write_text(json.dumps(good) + "\n"
                    + json.dumps(bad_spec) + "\n"
                    + '{"kind": "job_acc')      # torn final line
    survivors = JobSpool(str(path)).replay()
    assert [e["job"] for e in survivors] == ["j1"]


# --------------------------------------------------------------- workers
def test_execute_spec_job_stores_and_reports(tmp_path):
    runs = str(tmp_path / "runs")
    result_path = str(tmp_path / "result.json")
    heartbeat = str(tmp_path / "beats.jsonl")
    payload = execute_spec_job(_spec().to_dict(), runs, heartbeat,
                               result_path)
    assert payload["ok"] and payload["run"]
    assert payload["summary"]["trials"] == 20
    on_disk = json.loads(open(result_path).read())
    assert on_disk == payload
    assert os.path.isfile(heartbeat)
    registry = RunRegistry(runs)
    assert find_cached(registry, _spec()) == payload["run"]


def test_execute_spec_job_never_raises(tmp_path):
    result_path = str(tmp_path / "result.json")
    payload = execute_spec_job({"workload": "nope"},
                               str(tmp_path / "runs"), "", result_path)
    assert not payload["ok"]
    assert "nope" in payload["error"]
    assert json.loads(open(result_path).read()) == payload


# -------------------------------------------------------------- protocol
def test_pack_bytes_round_trips_and_is_deterministic():
    plain = b'{"kind": "trial"}\n' * 10
    entry = pack_bytes(plain)
    assert entry["encoding"] == "gzip+base64"
    assert unpack_bytes(entry) == plain
    assert pack_bytes(plain) == entry           # deterministic gzip
    import gzip as gz

    gzipped = gz.compress(b"already compressed")
    entry = pack_bytes(gzipped)
    assert entry["encoding"] == "base64"
    assert unpack_bytes(entry) == gzipped       # original bytes back


# ---------------------------------------------------------- live server
@pytest.fixture
def server(tmp_path):
    srv = CampaignServer(port=0, runs_dir=str(tmp_path / "runs"),
                         state_dir=str(tmp_path / "serve"),
                         workers=2, quiet=True)
    thread = srv.serve_in_thread()
    yield srv
    srv.request_stop()
    thread.join(timeout=20)


def test_server_cold_then_cached_submission(server, tmp_path):
    client = ServiceClient(port=server.port)
    spec = _spec()
    cold = client.submit(spec)
    assert cold["state"] == QUEUED
    final = client.wait(cold["job"])
    assert final["state"] == DONE and final["run"]

    cached = client.submit(spec)
    assert cached["state"] == CACHED
    assert cached["run"] == final["run"]
    stats = client.stats()["stats"]
    # The second submission executed zero trials: one worker ever ran.
    assert stats["executed"] == 1
    assert stats["cache_hits"] == 1

    run_id, files = client.fetch(job=cold["job"],
                                 dest=str(tmp_path / "fetch"))
    assert run_id == final["run"]
    run_dir = os.path.join(str(tmp_path / "runs"), run_id)
    assert sorted(os.path.basename(p) for p in files) == sorted(
        os.listdir(run_dir))
    for path in files:
        stored = os.path.join(run_dir, os.path.basename(path))
        assert open(path, "rb").read() == open(stored, "rb").read()


def test_server_cache_hit_needs_no_workers(tmp_path):
    from repro.obs import CampaignLog

    runs = str(tmp_path / "runs")
    spec = _spec()
    program, machine = prepare_spec(spec)
    log = CampaignLog(context=spec.log_context())
    stored = store_spec_run(RunRegistry(runs), spec,
                            run_spec(spec, program, machine=machine,
                                     log=log), program, log)
    # workers=0 cannot execute anything; only the cache can answer.
    srv = CampaignServer(port=0, runs_dir=runs,
                         state_dir=str(tmp_path / "serve"),
                         workers=0, quiet=True)
    thread = srv.serve_in_thread()
    try:
        reply = ServiceClient(port=srv.port).submit(spec)
        assert reply["state"] == CACHED
        assert reply["run"] == stored.run_id
    finally:
        srv.request_stop()
        thread.join(timeout=20)


def test_server_rate_limits_per_client(tmp_path):
    srv = CampaignServer(port=0, runs_dir=str(tmp_path / "runs"),
                         state_dir=str(tmp_path / "serve"),
                         workers=0, max_pending=1, quiet=True)
    thread = srv.serve_in_thread()
    try:
        client = ServiceClient(port=srv.port)
        client.submit(_spec(seed=1), client="ci")
        with pytest.raises(ServiceError) as info:
            client.submit(_spec(seed=2), client="ci")
        assert info.value.reply.get("rate_limited") is True
        client.submit(_spec(seed=2), client="other")
    finally:
        srv.request_stop()
        thread.join(timeout=20)


def test_server_cancel_queued_job(tmp_path):
    srv = CampaignServer(port=0, runs_dir=str(tmp_path / "runs"),
                         state_dir=str(tmp_path / "serve"),
                         workers=0, quiet=True)
    thread = srv.serve_in_thread()
    try:
        client = ServiceClient(port=srv.port)
        job = client.submit(_spec())["job"]
        reply = client.cancel(job)
        assert reply["was"] == QUEUED
        assert client.status(job)["state"] == CANCELLED
        with pytest.raises(ServiceError):
            client.cancel(job)                  # already terminal
    finally:
        srv.request_stop()
        thread.join(timeout=20)


def test_server_cancel_running_job(server):
    client = ServiceClient(port=server.port)
    # A budget big enough that the worker is still mid-campaign when
    # the cancel lands (compile alone takes a moment).
    job = client.submit(CampaignSpec(workload="crc32", seed=3,
                                     trials=4000))["job"]
    deadline = time.time() + 60
    while time.time() < deadline:
        state = client.status(job)["state"]
        if state == RUNNING:
            break
        assert state == QUEUED
        time.sleep(0.05)
    reply = client.cancel(job)
    assert reply["was"] == RUNNING
    assert client.status(job)["state"] == CANCELLED
    # The killed worker must not resurrect the job as done/failed.
    time.sleep(0.5)
    assert client.status(job)["state"] == CANCELLED
    assert client.stats()["stats"]["cancelled"] == 1


def test_server_restart_requeues_accepted_jobs(tmp_path):
    runs = str(tmp_path / "runs")
    state = str(tmp_path / "serve")
    srv = CampaignServer(port=0, runs_dir=runs, state_dir=state,
                         workers=0, quiet=True)
    thread = srv.serve_in_thread()
    try:
        client = ServiceClient(port=srv.port)
        job = client.submit(_spec(), priority=2)["job"]
        done = client.submit(_spec(seed=11))["job"]
        client.cancel(done)                     # terminal: not replayed
    finally:
        srv.request_stop()
        thread.join(timeout=20)

    revived = CampaignServer(port=0, runs_dir=runs, state_dir=state,
                             workers=1, quiet=True)
    thread = revived.serve_in_thread()
    try:
        client = ServiceClient(port=revived.port)
        assert client.stats()["stats"]["requeued"] == 1
        listed = {j["job"]: j for j in client.jobs()["jobs"]}
        assert job in listed and done not in listed
        assert listed[job]["priority"] == 2
        final = client.wait(job)                # re-queued job executes
        assert final["state"] == DONE and final["run"]
    finally:
        revived.request_stop()
        thread.join(timeout=20)


def test_server_rejects_garbage_frames_and_unknown_ops(server):
    import socket

    with socket.create_connection(("127.0.0.1", server.port),
                                  timeout=30) as sock:
        handle = sock.makefile("rb")
        sock.sendall(b"not json\n")
        assert not json.loads(handle.readline())["ok"]
        sock.sendall(b'{"op": "frobnicate"}\n')
        reply = json.loads(handle.readline())
        assert not reply["ok"] and "frobnicate" in reply["error"]
        sock.sendall(b'{"op": "submit", "spec": {"trials": 5}}\n')
        assert "exactly one program" in json.loads(
            handle.readline())["error"]


# ------------------------------------------------------------ CLI client
def test_cli_submit_wait_status_fetch_cancel(server, tiny_c, tmp_path,
                                             capsys):
    endpoint = ["--host", "127.0.0.1", "--port", str(server.port)]
    assert cli_main(["submit", *endpoint, tiny_c, "--trials", "20",
                     "--seed", "7", "--wait"]) == 0
    out = capsys.readouterr().out
    assert "state     : done" in out
    run_id = [line for line in out.splitlines()
              if line.startswith("run       :")][0].split()[-1]

    # Resubmitting the identical spec is answered from the ledger.
    assert cli_main(["submit", *endpoint, tiny_c, "--trials", "20",
                     "--seed", "7"]) == 0
    out = capsys.readouterr().out
    assert "state     : cached" in out and run_id in out

    assert cli_main(["status", *endpoint]) == 0
    assert "done" in capsys.readouterr().out

    dest = str(tmp_path / "cli-fetch")
    assert cli_main(["fetch", *endpoint, "--run", run_id,
                     "--dest", dest]) == 0
    capsys.readouterr()
    assert os.path.isfile(os.path.join(dest, run_id, "manifest.json"))

    queued = cli_main(["submit", *endpoint, tiny_c, "--trials", "21"])
    assert queued == 0
    out = capsys.readouterr().out
    job = [line for line in out.splitlines()
           if line.startswith("job       :")][0].split()[-1]
    assert cli_main(["cancel", *endpoint, job]) == 0
    assert "cancelled" in capsys.readouterr().out


def test_cli_submit_refuses_connection_cleanly(tiny_c, capsys):
    # Unroutable port: a clean error message, not a traceback.
    assert cli_main(["submit", "--port", "1", tiny_c]) == 1
    assert "serve" in capsys.readouterr().err
