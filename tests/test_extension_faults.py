"""Extension fault models: opcode-bit faults and wild jumps, plus the
control-flow checking pass that addresses the latter."""

import pytest

from repro.faults import (
    OpcodeFaultInjector,
    OpcodeFaultSite,
    WildJumpSite,
    run_opcode_campaign,
    run_wild_jump_campaign,
    run_with_wild_jump,
)
from repro.isa import Opcode, Role, verify_program
from repro.sim import Machine, RunStatus, run_program
from repro.transform import (
    Technique,
    allocate_program,
    apply_cfc,
    count_cfc_checks,
    protect,
)
from repro.workloads import build


@pytest.fixture(scope="module")
def sort_noft():
    return allocate_program(build("sort"))


@pytest.fixture(scope="module")
def sort_golden(sort_noft):
    return run_program(sort_noft)


# ------------------------------------------------------------ opcode faults
def test_opcode_site_validation():
    with pytest.raises(ValueError):
        OpcodeFaultSite(dynamic_index=0, bit=64)
    with pytest.raises(ValueError):
        OpcodeFaultSite(dynamic_index=-1, bit=0)


def test_opcode_fault_reserved_bit_is_silent(sort_noft, sort_golden):
    """Bit 63 is a reserved encoding bit: flipping it changes nothing."""
    injector = OpcodeFaultInjector(sort_noft)
    result = injector.run_with_fault(OpcodeFaultSite(dynamic_index=50,
                                                     bit=63))
    assert result.status is RunStatus.EXITED
    assert result.output == sort_golden.output


def test_opcode_fault_campaign_runs(sort_noft):
    campaign = run_opcode_campaign(sort_noft, trials=80, seed=3)
    assert campaign.trials == 80
    total = (campaign.unace_percent + campaign.sdc_percent
             + campaign.segv_percent + campaign.detected_percent)
    assert total == pytest.approx(100.0)


def test_opcode_faults_defeat_register_protection():
    """The paper's class-3 vulnerability: SWIFT-R's near-perfect
    register-fault protection degrades markedly under opcode faults."""
    from repro.faults import run_campaign

    binary = allocate_program(protect(build("sort"), Technique.SWIFTR))
    machine = Machine(binary)
    register_faults = run_campaign(binary, trials=150, seed=9,
                                   machine=machine)
    opcode_faults = run_opcode_campaign(binary, trials=150, seed=9,
                                        machine=machine)
    assert register_faults.unace_percent > 95.0
    assert opcode_faults.unace_percent < register_faults.unace_percent - 5.0


def test_opcode_fault_determinism(sort_noft):
    a = run_opcode_campaign(sort_noft, trials=60, seed=4)
    b = run_opcode_campaign(sort_noft, trials=60, seed=4)
    assert a.counts == b.counts


# --------------------------------------------------------------- wild jumps
def test_wild_jump_changes_control_flow(sort_noft, sort_golden):
    machine = Machine(sort_noft)
    outcomes = set()
    for seed in range(20):
        site = WildJumpSite(dynamic_index=200 + seed * 37,
                            target_seed=seed)
        result = run_with_wild_jump(machine, site)
        outcomes.add(result.status)
    assert outcomes  # at least ran; typically a mix of exits and traps


def test_wild_jump_campaign_deterministic(sort_noft):
    a = run_wild_jump_campaign(sort_noft, trials=60, seed=2)
    b = run_wild_jump_campaign(sort_noft, trials=60, seed=2)
    assert a.counts == b.counts


# ---------------------------------------------------------------------- CFC
def test_cfc_preserves_semantics(sort_noft, sort_golden):
    hardened = allocate_program(apply_cfc(build("sort")))
    verify_program(hardened, require_physical=True)
    result = run_program(hardened)
    assert result.output == sort_golden.output


def test_cfc_on_all_workload_shapes():
    for name in ("crc32", "matmul", "adpcmdec"):
        program = build(name)
        golden = run_program(allocate_program(program))
        hardened = allocate_program(apply_cfc(program))
        assert run_program(hardened).output == golden.output, name


def test_cfc_inserts_checks():
    hardened = apply_cfc(build("sort"))
    assert count_cfc_checks(hardened) > 5
    # Every function got a detect block.
    for fn in hardened:
        assert any(i.op is Opcode.DETECT for i in fn.instructions())


def test_cfc_detects_wild_jumps():
    program = build("sort")
    plain = allocate_program(program)
    checked = allocate_program(apply_cfc(program))
    plain_campaign = run_wild_jump_campaign(plain, trials=150, seed=9)
    cfc_campaign = run_wild_jump_campaign(checked, trials=150, seed=9)
    assert plain_campaign.detected_percent == 0.0
    assert cfc_campaign.detected_percent > 25.0
    # Detection converts silent corruption into DUEs.
    assert cfc_campaign.sdc_percent < plain_campaign.sdc_percent


def test_cfc_composes_with_swiftr():
    program = build("crc32")
    golden = run_program(allocate_program(program))
    stacked = allocate_program(apply_cfc(protect(program,
                                                 Technique.SWIFTR)))
    verify_program(stacked, require_physical=True)
    assert run_program(stacked).output == golden.output


def test_cfc_signatures_distinct():
    from repro.transform.controlflow import block_signature

    signatures = {block_signature("f", i) for i in range(200)}
    assert len(signatures) == 200
    assert all(s != 0 for s in signatures)
