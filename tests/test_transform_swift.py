"""SWIFT: duplication + detection (paper Section 2.2, Figures 1-2)."""

from repro.isa import Opcode, Role, parse_program, print_function
from repro.sim import RunStatus, run_program
from repro.transform import Technique, apply_swift, protect
from repro.faults import FaultSite, run_with_fault
from repro.sim import Machine
from repro.transform import allocate_program


def _ops_with_roles(fn):
    return [(i.op, i.role) for i in fn.instructions()]


def test_figure1_load_store_pattern():
    """Check before load; copy after load; checks before store."""
    program = parse_program("""
func main(0):
entry:
    li v4, 65536
    load v3, [v4 + 0]
    add v1, v2, v3
    store [v1 + 0], v2
    ret
""")
    program.add_global("g", 1)
    swift = apply_swift(program)
    fn = swift.function("main")
    text = print_function(fn)
    instrs = list(fn.instructions())
    # The load address is validated by a branch before the load.
    load_pos = next(i for i, ins in enumerate(instrs)
                    if ins.op is Opcode.LOAD)
    before_load = instrs[:load_pos]
    assert any(ins.op is Opcode.BNE and ins.role is Role.CHECK
               for ins in before_load), text
    # The loaded value is copied into its shadow right after the load.
    after_load = instrs[load_pos + 1]
    assert after_load.op is Opcode.MOV and after_load.role is Role.COPY
    # The add is duplicated.
    adds = [ins for ins in instrs if ins.op is Opcode.ADD]
    assert len(adds) == 2
    assert adds[1].role is Role.REDUNDANT
    # Both store operands are checked: two more CHECK branches.
    checks = [ins for ins in instrs
              if ins.role is Role.CHECK and ins.op is Opcode.BNE]
    assert len(checks) == 3  # load address + store address + store value


def test_figure2_branch_and_call_pattern():
    program = parse_program("""
func other(1):
entry:
    param v0, 0
    ret v0

func main(0):
entry:
    li v0, 1
    call v1, other(v0)
    beq v1, v0, done
mid:
    jmp done
done:
    ret
""")
    swift = apply_swift(program)
    fn = swift.function("main")
    instrs = list(fn.instructions())
    call_pos = next(i for i, ins in enumerate(instrs) if ins.is_call)
    # The call argument is checked before the call.
    assert any(ins.role is Role.CHECK for ins in instrs[:call_pos])
    # The return value is copied afterwards (mov R0' = R0).
    assert instrs[call_pos + 1].op is Opcode.MOV
    assert instrs[call_pos + 1].role is Role.COPY
    # Both branch sources are checked before the conditional branch.
    branch_pos = next(i for i, ins in enumerate(instrs)
                      if ins.op is Opcode.BEQ and ins.role is Role.ORIGINAL)
    check_count = sum(1 for ins in instrs[call_pos:branch_pos]
                      if ins.role is Role.CHECK)
    assert check_count >= 2


def test_detect_block_appended_once():
    program = parse_program("""
func main(0):
entry:
    li v0, 65536
    load v1, [v0 + 0]
    print v1
    ret
""")
    program.add_global("g", 1)
    swift = apply_swift(program)
    fn = swift.function("main")
    detects = [i for i in fn.instructions() if i.op is Opcode.DETECT]
    assert len(detects) == 1
    # It lives in the final block.
    assert fn.blocks[-1].instructions[-1].op is Opcode.DETECT


def test_swift_detects_injected_fault(simple_program, simple_golden):
    """A fault on a long-lived register triggers faultDet, not SDC."""
    binary = allocate_program(protect(simple_program, Technique.SWIFT))
    machine = Machine(binary)
    detected = 0
    sdc = 0
    for trial in range(120):
        site = FaultSite(dynamic_index=17 + trial, reg_index=(trial % 29) + 2,
                         bit=trial % 64)
        if site.reg_index == 1:
            continue
        result = run_with_fault(machine, site)
        if result.status is RunStatus.DETECTED:
            detected += 1
        elif (result.status is RunStatus.EXITED
              and result.output != simple_golden.output):
            sdc += 1
    assert detected > 0
    # Detection-only still eliminates nearly all silent corruption.
    assert sdc <= detected


def test_swift_preserves_semantics(simple_program, simple_golden):
    hardened = protect(simple_program, Technique.SWIFT)
    result = run_program(hardened)
    assert result.output == simple_golden.output


def test_float_code_untouched():
    program = parse_program("""
func main(0):
entry:
    fli fv0, 1.5
    fadd fv1, fv0, fv0
    fprint fv1
    ret
""")
    swift = apply_swift(program)
    fn = swift.function("main")
    fp_ops = [i for i in fn.instructions()
              if i.op in (Opcode.FLI, Opcode.FADD)]
    assert len(fp_ops) == 2  # not duplicated
    assert all(i.role is Role.ORIGINAL for i in fp_ops)
