"""repro.stats: estimators, difference tests, allocation, claims."""

import math

import pytest

from repro.faults.outcomes import Outcome
from repro.faults.stats import (
    Proportion,
    _z_value,
    beta_cdf,
    normal_cdf,
    normal_quantile,
    wilson_bounds,
)
from repro.stats import (
    StratumCell,
    estimate_difference,
    neyman_allocation,
    stratified_estimate,
    two_proportion_diff,
)


# ----------------------------------------------------------------- probit
# References: scipy.stats.norm.ppf at the two-sided tail points.
_Z_REFERENCES = {
    0.80: 1.2815515655446004,
    0.975: 2.241402727604947,
    0.999: 3.2905267314919255,
}


@pytest.mark.parametrize("confidence,reference",
                         sorted(_Z_REFERENCES.items()))
def test_z_value_matches_scipy(confidence, reference):
    assert _z_value(confidence) == pytest.approx(reference, abs=1e-10)


def test_normal_quantile_round_trips_through_cdf():
    for p in (0.001, 0.02425, 0.3, 0.5, 0.7, 0.97575, 0.999):
        assert normal_cdf(normal_quantile(p)) == pytest.approx(p,
                                                               abs=1e-12)
    assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)
    # Symmetry of the two tails.
    assert normal_quantile(0.01) == pytest.approx(-normal_quantile(0.99),
                                                  abs=1e-12)


def test_z_value_rejects_degenerate_confidence():
    for bad in (0.0, 1.0, -0.5, 1.5):
        with pytest.raises(ValueError):
            _z_value(bad)


# --------------------------------------------------------------- jeffreys
def test_jeffreys_degenerate_zero_of_n():
    # scipy.stats.beta.ppf(0.975, 0.5, 10.5) for the upper bound.
    low, high = Proportion(0, 10).jeffreys_interval()
    assert low == 0.0
    assert high == pytest.approx(0.21719626750921053, abs=1e-8)


def test_jeffreys_degenerate_n_of_n():
    # Mirror image: scipy.stats.beta.ppf(0.025, 10.5, 0.5).
    low, high = Proportion(10, 10).jeffreys_interval()
    assert high == 1.0
    assert low == pytest.approx(0.7828037324907894, abs=1e-8)


def test_jeffreys_interior_matches_scipy():
    low, high = Proportion(3, 50).jeffreys_interval()
    assert low == pytest.approx(0.017186649071151135, abs=1e-8)
    assert high == pytest.approx(0.15153256302766024, abs=1e-8)


def test_jeffreys_shrinks_with_more_trials():
    _, h10 = Proportion(0, 10).jeffreys_interval()
    _, h250 = Proportion(0, 250).jeffreys_interval()
    assert h250 < h10
    assert h250 == pytest.approx(0.00998751145709396, abs=1e-8)


def test_beta_cdf_quantile_consistency():
    # The quantile really inverts the CDF.
    for q, a, b in ((0.975, 0.5, 10.5), (0.025, 3.5, 47.5),
                    (0.5, 2.0, 2.0)):
        from repro.faults.stats import beta_quantile
        x = beta_quantile(q, a, b)
        assert beta_cdf(x, a, b) == pytest.approx(q, abs=1e-9)


def test_interval_selects_jeffreys_only_when_degenerate():
    degenerate = Proportion(0, 20)
    assert degenerate.interval() == degenerate.jeffreys_interval()
    full = Proportion(20, 20)
    assert full.interval() == full.jeffreys_interval()
    interior = Proportion(7, 20)
    assert interior.interval() == interior.wilson_interval()
    assert interior.interval() != interior.jeffreys_interval()


def test_proportion_str_uses_selected_interval():
    text = str(Proportion(0, 20))
    low, high = Proportion(0, 20).interval()
    assert f"[{100*low:.2f}, {100*high:.2f}]" in text
    assert text.startswith("0.00%")


# ------------------------------------------------------------- stratified
def test_stratified_empty_input():
    estimate = stratified_estimate([])
    assert estimate.method == "empty"
    assert (estimate.low, estimate.high) == (0.0, 1.0)
    assert estimate.trials == 0


def test_stratified_drops_empty_stratum():
    cells = [
        StratumCell("a", 0.5, 40, 10),
        StratumCell("b", 0.5, 0, 0),  # unobserved: dropped, renormalized
    ]
    estimate = stratified_estimate(cells)
    only_a = stratified_estimate([StratumCell("a", 1.0, 40, 10)])
    assert estimate.value == pytest.approx(only_a.value)
    assert estimate.low == pytest.approx(only_a.low)
    assert estimate.high == pytest.approx(only_a.high)


def test_stratified_single_stratum_reduces_to_wilson():
    p = Proportion(13, 60)
    estimate = stratified_estimate([StratumCell("all", 1.0, 60, 13)])
    wlow, whigh = p.wilson_interval()
    assert estimate.method == "wilson"
    assert estimate.value == pytest.approx(13 / 60, abs=1e-12)
    assert estimate.low == pytest.approx(wlow, abs=1e-12)
    assert estimate.high == pytest.approx(whigh, abs=1e-12)
    assert estimate.n_effective == pytest.approx(60, rel=1e-6)


def test_stratified_single_trial_stratum():
    cells = [StratumCell("a", 0.9, 50, 25), StratumCell("b", 0.1, 1, 1)]
    estimate = stratified_estimate(cells)
    assert estimate.value == pytest.approx(0.9 * 0.5 + 0.1 * 1.0)
    assert 0.0 < estimate.low < estimate.value < estimate.high < 1.0


def test_stratified_all_degenerate_falls_back_to_jeffreys():
    cells = [StratumCell("a", 0.5, 30, 0), StratumCell("b", 0.5, 20, 0)]
    estimate = stratified_estimate(cells)
    jlow, jhigh = Proportion(0, 50).jeffreys_interval()
    assert estimate.method == "jeffreys"
    assert estimate.value == 0.0
    assert (estimate.low, estimate.high) == (jlow, jhigh)


def test_stratified_rejects_weightless_strata():
    with pytest.raises(ValueError):
        stratified_estimate([StratumCell("a", 0.0, 10, 5)])


def test_wilson_bounds_accepts_fractional_n():
    # Effective sample sizes are rarely integers.
    low, high = wilson_bounds(0.3, 47.3, 1.96)
    assert 0.0 < low < 0.3 < high < 1.0


# ------------------------------------------------------------ difference
def test_two_proportion_diff_sign_and_significance():
    test = two_proportion_diff(90, 100, 10, 100)
    assert test.diff == pytest.approx(0.8)
    assert test.significant and test.p_value < 1e-12
    flipped = two_proportion_diff(10, 100, 90, 100)
    assert flipped.diff == pytest.approx(-0.8)
    assert flipped.z == pytest.approx(-test.z)


def test_two_proportion_diff_null_case():
    test = two_proportion_diff(20, 100, 20, 100)
    assert test.diff == 0.0
    assert test.p_value == pytest.approx(1.0)
    assert not test.significant
    assert test.low < 0.0 < test.high


def test_two_proportion_diff_requires_trials():
    with pytest.raises(ValueError):
        two_proportion_diff(1, 0, 1, 10)


def test_estimate_difference_on_stratified_scale():
    high = stratified_estimate([StratumCell("a", 1.0, 200, 180)])
    low = stratified_estimate([StratumCell("a", 1.0, 200, 20)])
    test = estimate_difference(high, low)
    assert test.diff == pytest.approx(0.8)
    assert test.significant
    null = estimate_difference(high, high)
    assert null.diff == 0.0
    assert null.p_value == pytest.approx(1.0)
    assert not null.significant


def test_estimate_difference_handles_degenerate_arms():
    # All-unACE SWIFT-R vs a noisy NOFT arm: the variance floor keeps
    # the test finite and the obvious difference significant.
    perfect = stratified_estimate([StratumCell("a", 1.0, 300, 300)])
    noisy = stratified_estimate([StratumCell("a", 1.0, 300, 150)])
    test = estimate_difference(perfect, noisy)
    assert math.isfinite(test.z)
    assert test.diff == pytest.approx(0.5)
    assert test.significant


# ------------------------------------------------------------- allocation
def _cells(spec):
    return [StratumCell(key, weight, trials, successes)
            for key, weight, trials, successes in spec]


def test_neyman_allocation_sums_to_batch():
    cells = _cells([("a", 0.5, 100, 50), ("b", 0.3, 100, 1),
                    ("c", 0.2, 100, 99)])
    allocation = neyman_allocation(cells, 97)
    assert sum(allocation.values()) == 97
    assert set(allocation) == {"a", "b", "c"}
    # Maximum-variance stratum (p ~ 0.5, largest weight) gets the most.
    assert allocation["a"] == max(allocation.values())


def test_neyman_allocation_prior_for_unsampled_strata():
    cells = _cells([("seen", 0.5, 100, 0), ("new", 0.5, 0, 0)])
    allocation = neyman_allocation(cells, 100)
    # The unsampled stratum uses the flat 0.5 prior and must dominate
    # the near-degenerate observed one.
    assert allocation["new"] > allocation["seen"]
    assert sum(allocation.values()) == 100


def test_neyman_allocation_floor():
    cells = _cells([("a", 0.98, 500, 250), ("b", 0.01, 500, 250),
                    ("c", 0.01, 500, 250)])
    allocation = neyman_allocation(cells, 90, floor=5)
    assert all(n >= 5 for n in allocation.values())
    assert sum(allocation.values()) == 90


def test_neyman_allocation_deterministic():
    cells = _cells([("a", 0.4, 10, 3), ("b", 0.3, 10, 3),
                    ("c", 0.3, 10, 3)])
    first = neyman_allocation(cells, 31)
    assert all(neyman_allocation(cells, 31) == first for _ in range(5))
    assert sum(first.values()) == 31


# ----------------------------------------------------------------- claims
def test_evaluate_claims_needs_noft():
    from repro.stats.claims import evaluate_claims

    class Grid:
        techniques = []
        cells = {}

    assert evaluate_claims(Grid()) == []


def test_outcome_sets_cover_failure_metric():
    from repro.stats.claims import FAILURE_OUTCOMES

    assert Outcome.SDC in FAILURE_OUTCOMES
    assert Outcome.SEGV in FAILURE_OUTCOMES
    assert Outcome.HANG in FAILURE_OUTCOMES
    assert Outcome.UNACE not in FAILURE_OUTCOMES
