"""Fault-provenance taint tracing: soundness, zero-cost gating, export."""

import pytest

from repro.faults import FaultSite, run_campaign, run_with_fault
from repro.faults.injector import CheckpointStore, golden_run
from repro.faults.outcomes import Outcome, classify
from repro.faults.parallel import run_parallel_campaign
from repro.isa.opcodes import Opcode
from repro.isa.operands import MASK64
from repro.obs import CampaignLog
from repro.sim import Machine, RunStatus, TaintTracker
from repro.transform import Technique, allocate_program, protect


@pytest.fixture
def noft_binary(simple_program):
    return allocate_program(simple_program)


@pytest.fixture
def swiftr_binary(simple_program):
    return allocate_program(protect(simple_program, Technique.SWIFTR))


@pytest.fixture
def trump_binary(simple_program):
    return allocate_program(protect(simple_program, Technique.TRUMP))


def _probe_sites(golden_instructions):
    """A deterministic grid of sites over the registers the allocator
    actually uses (it assigns from r24 down) and a spread of icounts."""
    step = max(golden_instructions // 7, 1)
    for dynamic_index in range(2, golden_instructions - 1, step):
        for reg_index in (20, 22, 24, 25, 26, 27, 28):
            for bit in (0, 5, 40):
                yield FaultSite(dynamic_index=dynamic_index,
                                reg_index=reg_index, bit=bit)


def _same_result(a, b):
    return (a.status is b.status and a.output == b.output
            and a.exit_code == b.exit_code
            and a.instructions == b.instructions
            and a.recoveries == b.recoveries)


# ----------------------------------------------------------- zero-cost gate
def test_taint_is_off_by_default(noft_binary):
    machine = Machine(noft_binary)
    assert machine.taint is None
    golden = golden_run(machine)
    assert golden.status is RunStatus.EXITED
    assert machine.taint is None


def test_injector_detaches_tracker(noft_binary):
    machine = Machine(noft_binary)
    golden = golden_run(machine)
    site = FaultSite(dynamic_index=golden.instructions // 2,
                     reg_index=26, bit=3)
    run_with_fault(machine, site, taint=TaintTracker())
    assert machine.taint is None          # detached even after tracing


# ------------------------------------------------- tracing changes nothing
@pytest.mark.parametrize("technique",
                         [None, Technique.SWIFTR, Technique.TRUMP])
def test_tracing_does_not_perturb_results(simple_program, technique):
    program = (simple_program if technique is None
               else protect(simple_program, technique))
    binary = allocate_program(program)
    machine = Machine(binary)
    golden = golden_run(machine)
    for site in _probe_sites(golden.instructions):
        plain = run_with_fault(machine, site)
        traced = run_with_fault(machine, site, taint=TaintTracker())
        assert _same_result(plain, traced), site
        assert classify(golden, plain) is classify(golden, traced)


def test_checkpointed_tracing_matches_full_replay(swiftr_binary):
    machine = Machine(swiftr_binary)
    store = CheckpointStore(machine, interval=40)
    golden = store.build()
    for site in _probe_sites(golden.instructions):
        plain = run_with_fault(machine, site)
        traced = store.run_with_fault(site, taint=TaintTracker())
        assert _same_result(plain, traced), site


# ------------------------------------------------------------- flip seeding
def test_flip_seeds_created_event(noft_binary):
    machine = Machine(noft_binary)
    machine.reset()
    assert machine.run(5).status is RunStatus.PAUSED
    tracker = TaintTracker()
    machine.taint = tracker
    try:
        machine.flip_register_bit(26, 7)
    finally:
        machine.taint = None
    assert tracker.regs[26] == 1 << 7
    assert tracker.created["event"] == "created"
    assert tracker.created["reg"] == 26
    assert tracker.created["bit"] == 7
    assert tracker.counts == {"created": 1}


# ----------------------------------------------------- locked known cases
def test_known_repaired_by_vote(swiftr_binary):
    """A SWIFT-R vote that repaired a corrupted copy is attributed to
    the voting instruction, with role ``vote``."""
    machine = Machine(swiftr_binary)
    golden = golden_run(machine)
    hit = None
    for site in _probe_sites(golden.instructions):
        tracker = TaintTracker()
        faulty = run_with_fault(machine, site, taint=tracker)
        if (classify(golden, faulty) is Outcome.UNACE
                and tracker.first_repair is not None
                and tracker.first_repair["event"] == "voted-out"):
            hit = (site, tracker)
            break
    assert hit is not None, "no vote-repaired trial in the probe grid"
    site, tracker = hit
    repair = tracker.first_repair
    assert repair["role"] == "vote"
    assert repair["icount"] > site.dynamic_index
    assert "instr" in repair and "loc" in repair
    assert tracker.counts.get("voted-out", 0) >= 1


def test_known_escape_via_store(noft_binary):
    """An unprotected SDC's taint stream names the store (or output)
    instruction that let the corruption out."""
    machine = Machine(noft_binary)
    golden = golden_run(machine)
    hit = None
    for site in _probe_sites(golden.instructions):
        tracker = TaintTracker()
        faulty = run_with_fault(machine, site, taint=tracker)
        if (classify(golden, faulty) is Outcome.SDC
                and tracker.first_escape is not None):
            hit = tracker
            break
    assert hit is not None, "no escaping SDC in the probe grid"
    escape = hit.first_escape
    assert escape["event"] in ("stored", "escaped-to-output")
    assert "instr" in escape and "loc" in escape
    if escape["event"] == "stored":
        assert escape["segment"] in ("global", "heap", "stack")


# -------------------------------------------------------- propagation rules
def test_binop_and_or_value_sensitivity():
    tracker = TaintTracker()
    taint = 1 << 3
    # AND: a clean 0 on the other side squashes the tainted bit; a
    # clean 1 lets it through.
    assert tracker._binop_taint(Opcode.AND, 0, taint, 0, 0) == 0
    assert tracker._binop_taint(Opcode.AND, 0, taint, 1 << 3, 0) == taint
    # OR: a clean 1 dominates the tainted bit; a clean 0 exposes it.
    assert tracker._binop_taint(Opcode.OR, 0, taint, 1 << 3, 0) == 0
    assert tracker._binop_taint(Opcode.OR, 0, taint, 0, 0) == taint
    # XOR is bit-local: taint unions through.
    assert tracker._binop_taint(Opcode.XOR, 5, taint, 9, 1 << 7) == \
        taint | (1 << 7)


def test_binop_add_carries_upward():
    tracker = TaintTracker()
    taint = 1 << 8
    mask = tracker._binop_taint(Opcode.ADD, 0, taint, 0, 0)
    assert mask == MASK64 & ~((1 << 8) - 1)      # bits 8..63
    assert tracker._carry_mask(0) == 0


def test_binop_mul_zero_squashes():
    tracker = TaintTracker()
    taint = 1 << 3
    assert tracker._binop_taint(Opcode.MUL, 7, taint, 0, 0) == 0
    assert tracker._binop_taint(Opcode.MUL, 7, taint, 2, 0) == MASK64


def test_binop_shifts_move_the_mask():
    tracker = TaintTracker()
    taint = 1 << 3
    assert tracker._binop_taint(Opcode.SHL, 0, taint, 4, 0) == 1 << 7
    assert tracker._binop_taint(Opcode.SHR, 0, taint, 2, 0) == 1 << 1
    # A tainted shift amount poisons everything.
    assert tracker._binop_taint(Opcode.SHL, 0, taint, 4, 1) == MASK64
    # Arithmetic right shift drags the (tainted) sign bit down.
    sign = 1 << 63
    assert tracker._binop_taint(Opcode.SRA, 0, sign, 4, 0) == \
        MASK64 & ~(MASK64 >> 4) | (sign >> 4)


def test_binop_compare_is_one_bit():
    tracker = TaintTracker()
    assert tracker._binop_taint(Opcode.CMPLT, 0, 1 << 9, 0, 0) == 1


# ------------------------------------------------------------------ bounds
def test_event_stream_is_capped_but_counts_are_not(noft_binary):
    machine = Machine(noft_binary)
    golden = golden_run(machine)
    tracker = TaintTracker(max_events=3)
    # An early flip in a live register generates a long event stream.
    run_with_fault(machine, FaultSite(dynamic_index=4, reg_index=27,
                                      bit=0), taint=tracker)
    assert len(tracker.events) == 3
    total = sum(tracker.counts.values())
    assert total > 3
    assert tracker.dropped == total - 3 - tracker.counts.get("converged", 0)
    summary = tracker.summary()
    assert summary["events_dropped"] == tracker.dropped
    assert summary["counts"] == tracker.counts


def test_step_budget_detaches_tracing(noft_binary):
    machine = Machine(noft_binary)
    golden = golden_run(machine)
    tracker = TaintTracker(max_steps=5)
    site = FaultSite(dynamic_index=2, reg_index=27, bit=0)
    plain = run_with_fault(machine, site)
    traced = run_with_fault(machine, site, taint=tracker)
    assert tracker.exhausted
    assert tracker.summary()["truncated"]
    assert _same_result(plain, traced)    # fallback path, same outcome


# -------------------------------------------------------- campaign plumbing
def test_campaign_taint_requires_log(noft_binary):
    with pytest.raises(ValueError, match="CampaignLog"):
        run_campaign(noft_binary, trials=2, taint=True)
    with pytest.raises(ValueError, match="CampaignLog"):
        run_parallel_campaign(noft_binary, trials=4, jobs=2, taint=True)


def test_campaign_taint_matches_plain_campaign(swiftr_binary):
    plain_log = CampaignLog()
    plain = run_campaign(swiftr_binary, trials=60, seed=11, log=plain_log)
    taint_log = CampaignLog()
    traced = run_campaign(swiftr_binary, trials=60, seed=11, log=taint_log,
                          taint=True)
    assert plain.counts == traced.counts
    assert plain.recoveries == traced.recoveries
    assert plain_log.to_dicts() == taint_log.to_dicts()
    summaries = [r for r in taint_log.taint_dicts()
                 if r["kind"] == "taint_summary"]
    landed = [r for r in taint_log.to_dicts() if r["fault_landed"]]
    assert len(summaries) == 60           # one summary per trial
    assert len(landed) <= 60


def test_parallel_taint_matches_serial(swiftr_binary):
    serial_log = CampaignLog(context={"technique": "swiftr"})
    serial = run_campaign(swiftr_binary, trials=40, seed=9,
                          log=serial_log, taint=True)
    parallel_log = CampaignLog(context={"technique": "swiftr"})
    parallel = run_parallel_campaign(swiftr_binary, trials=40, seed=9,
                                     jobs=2, log=parallel_log, taint=True)
    assert serial.counts == parallel.counts
    assert serial_log.to_dicts() == parallel_log.to_dicts()
    assert serial_log.taint_dicts() == parallel_log.taint_dicts()
