"""Instruction construction, predicates, and rewriting."""

from repro.isa import (
    Imm,
    Instruction,
    Opcode,
    Role,
    make_li,
    make_mov,
    vreg,
    fvreg,
)
from repro.isa.instruction import PROTECTION_ROLES


def test_source_registers_skips_immediates():
    instr = Instruction(Opcode.ADD, dest=vreg(2), srcs=(vreg(0), Imm(5)))
    assert list(instr.source_registers()) == [vreg(0)]
    assert list(instr.registers()) == [vreg(0), vreg(2)]


def test_predicates():
    load = Instruction(Opcode.LOAD, dest=vreg(1), srcs=(vreg(0), Imm(0)))
    store = Instruction(Opcode.STORE, srcs=(vreg(0), Imm(0), vreg(1)))
    branch = Instruction(Opcode.BEQ, srcs=(vreg(0), vreg(1)), label="x")
    call = Instruction(Opcode.CALL, dest=vreg(2), callee="f")
    out = Instruction(Opcode.PRINT, srcs=(vreg(0),))
    assert load.reads_memory and not load.writes_memory
    assert store.writes_memory and not store.reads_memory
    assert branch.is_branch and branch.is_terminator
    assert call.is_call
    assert out.is_output


def test_replace_sources():
    instr = Instruction(Opcode.ADD, dest=vreg(2), srcs=(vreg(0), vreg(1)))
    instr.replace_sources({vreg(0): vreg(10)})
    assert instr.srcs == (vreg(10), vreg(1))
    # Immediates pass through.
    instr2 = Instruction(Opcode.ADD, dest=vreg(2), srcs=(vreg(0), Imm(3)))
    instr2.replace_sources({vreg(0): vreg(9)})
    assert instr2.srcs == (vreg(9), Imm(3))


def test_clone_is_independent():
    instr = Instruction(Opcode.ADD, dest=vreg(2), srcs=(vreg(0), vreg(1)),
                        role=Role.REDUNDANT, value_bits=32)
    clone = instr.clone()
    assert clone == instr
    assert clone is not instr
    assert clone.role is Role.REDUNDANT
    assert clone.value_bits == 32
    clone.srcs = (vreg(5), vreg(6))
    assert instr.srcs == (vreg(0), vreg(1))


def test_structural_equality_ignores_role():
    a = Instruction(Opcode.ADD, dest=vreg(2), srcs=(vreg(0), vreg(1)))
    b = Instruction(Opcode.ADD, dest=vreg(2), srcs=(vreg(0), vreg(1)),
                    role=Role.VOTE)
    assert a == b
    c = Instruction(Opcode.SUB, dest=vreg(2), srcs=(vreg(0), vreg(1)))
    assert a != c


def test_protection_roles():
    assert Role.VOTE in PROTECTION_ROLES
    assert Role.CHECK in PROTECTION_ROLES
    assert Role.ORIGINAL not in PROTECTION_ROLES
    assert Role.SPILL not in PROTECTION_ROLES
    instr = Instruction(Opcode.NOP, role=Role.RECOVERY)
    assert instr.is_protection


def test_make_helpers():
    mov = make_mov(vreg(1), vreg(0), Role.COPY)
    assert mov.op is Opcode.MOV and mov.role is Role.COPY
    fmov = make_mov(fvreg(1), fvreg(0), Role.COPY)
    assert fmov.op is Opcode.FMOV
    li = make_li(vreg(0), -7)
    assert li.srcs[0].signed == -7


def test_imm_wraps_to_64_bits():
    assert Imm(-1).value == (1 << 64) - 1
    assert Imm(-1).signed == -1
    assert Imm(1 << 64).value == 0
