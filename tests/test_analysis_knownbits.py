"""Known-zero-bits analysis: transfer functions and soundness."""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis import KnownBits
from repro.analysis.knownbits import transfer
from repro.isa import (
    Function,
    IRBuilder,
    Imm,
    Instruction,
    MASK64,
    Opcode,
    vreg,
)
from repro.sim import Machine


def _kz_of(op, srcs, state=None, dest=vreg(99)):
    instr = Instruction(op, dest=dest, srcs=srcs)
    return transfer(instr, state or {})


def test_li_known_exactly():
    assert _kz_of(Opcode.LI, (Imm(0b1010),)) == MASK64 & ~0b1010
    assert _kz_of(Opcode.LI, (Imm(0),)) == MASK64


def test_and_with_immediate():
    # and r, x, 1 -> all bits but bit 0 are provably zero (Figure 6!).
    assert _kz_of(Opcode.AND, (vreg(0), Imm(1))) == MASK64 & ~1


def test_compare_result_is_boolean():
    assert _kz_of(Opcode.CMPLT, (vreg(0), vreg(1))) == MASK64 & ~1


def test_or_meets_masks():
    state = {vreg(0): MASK64 & ~0xF, vreg(1): MASK64 & ~0xF0}
    assert _kz_of(Opcode.OR, (vreg(0), vreg(1)), state) == MASK64 & ~0xFF


def test_xor_meets_masks():
    state = {vreg(0): MASK64 & ~1, vreg(1): MASK64 & ~1}
    assert _kz_of(Opcode.XOR, (vreg(0), vreg(1)), state) == MASK64 & ~1


def test_shl_shifts_mask():
    state = {vreg(0): MASK64 & ~0xFF}  # value <= 255
    kz = _kz_of(Opcode.SHL, (vreg(0), Imm(4)), state)
    # Result <= 255 << 4; low 4 bits are zero.
    assert kz & 0xF == 0xF
    assert kz & (0xFF << 4) == 0


def test_shr_introduces_high_zeros():
    kz = _kz_of(Opcode.SHR, (vreg(0), Imm(60)), {})
    # Result < 16: top 60 bits zero.
    assert kz == MASK64 & ~0xF


def test_add_bounds():
    state = {vreg(0): MASK64 & ~0xFF, vreg(1): MASK64 & ~0xFF}
    kz = _kz_of(Opcode.ADD, (vreg(0), vreg(1)), state)
    # Sum <= 510 -> bits above 8 are zero.
    assert kz & ~0x1FF == MASK64 & ~0x1FF


def test_add_common_low_zero_run():
    state = {vreg(0): MASK64 & ~0xF0, vreg(1): MASK64 & ~0xF0}
    kz = _kz_of(Opcode.ADD, (vreg(0), vreg(1)), state)
    assert kz & 0xF == 0xF  # low 4 bits stay zero through addition


def test_mul_bounds():
    state = {vreg(0): MASK64 & ~0xFF, vreg(1): MASK64 & ~0xFF}
    kz = _kz_of(Opcode.MUL, (vreg(0), vreg(1)), state)
    assert kz & ~0xFFFF == MASK64 & ~0xFFFF


def test_load_gives_nothing():
    """value_bits is a signed-magnitude bound, never a known-zero fact."""
    instr = Instruction(Opcode.LOAD, dest=vreg(9), srcs=(vreg(0), Imm(0)),
                        value_bits=32)
    assert transfer(instr, {}) == 0


def test_figure6_idiom_fixed_point():
    """The adpcmdec guard keeps 63 known-zero bits at the loop header."""
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    guard = b.li(0)
    i = b.li(0)
    b.jmp("head")
    b.start_block("head")
    b.xor(guard, 1, dest=guard)
    b.add(i, 1, dest=i)
    b.blt(i, 10, "head")
    b.start_block("exit")
    b.print_(guard)
    b.ret()
    kb = KnownBits(fn)
    assert kb.known_zero_at_entry("head", guard) == MASK64 & ~1


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_soundness_on_random_straightline(seed):
    """Every claimed-zero bit is zero on a concrete execution."""
    rng = random.Random(seed)
    from repro.isa import Program

    program = Program()
    fn = Function("main")
    program.add_function(fn)
    b = IRBuilder(fn)
    b.start_block("entry")
    live = [b.li(rng.randrange(-1000, 1000)) for _ in range(4)]
    ops = [
        lambda x, y: b.add(x, y),
        lambda x, y: b.sub(x, y),
        lambda x, y: b.and_(x, Imm(rng.randrange(0, 256))),
        lambda x, y: b.or_(x, y),
        lambda x, y: b.xor(x, y),
        lambda x, y: b.shl(x, Imm(rng.randrange(0, 8))),
        lambda x, y: b.shr(x, Imm(rng.randrange(0, 8))),
        lambda x, y: b.mul(x, Imm(rng.randrange(0, 16))),
        lambda x, y: b.cmplt(x, y),
    ]
    for _ in range(25):
        op = rng.choice(ops)
        live.append(op(rng.choice(live), rng.choice(live)))
        if len(live) > 8:
            live.pop(0)
    b.ret()
    kb = KnownBits(fn)
    machine = Machine(program)
    machine.run(None)
    # Re-execute instruction by instruction, checking each claim.
    machine.reset()
    for instr in fn.entry.instructions:
        machine.run(machine.icount + 1)
        if instr in kb.dest_kz and instr.dest is not None:
            value = machine.regs[machine.slot_of(instr.dest)]
            claimed_zero = kb.dest_kz[instr]
            assert value & claimed_zero == 0, (
                f"{instr!r}: value {value:#x} has bits in claimed-zero "
                f"mask {claimed_zero:#x}"
            )
