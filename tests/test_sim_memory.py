"""Guest memory: segments, alignment, typed access."""

import pytest

from repro.isa import GLOBAL_BASE, HEAP_BASE, Program, STACK_TOP
from repro.sim import GuestTrap, Memory, bits_to_float, float_to_bits


def test_segments_mapped():
    mem = Memory(global_bytes=64)
    mem.check(GLOBAL_BASE)
    mem.check(GLOBAL_BASE + 56)
    mem.check(HEAP_BASE)
    mem.check(STACK_TOP - 8)


def test_unmapped_addresses_trap():
    mem = Memory(global_bytes=64)
    for addr in (0, 8, GLOBAL_BASE - 8, GLOBAL_BASE + 64,
                 HEAP_BASE - 8, STACK_TOP, 1 << 40):
        with pytest.raises(GuestTrap):
            mem.check(addr)
        assert not mem.is_valid(addr)


def test_misaligned_access_traps():
    mem = Memory(global_bytes=64)
    for misalign in range(1, 8):
        with pytest.raises(GuestTrap):
            mem.check(GLOBAL_BASE + misalign)


def test_int_store_load():
    mem = Memory(global_bytes=64)
    mem.store_int(GLOBAL_BASE, -1)
    assert mem.load_int(GLOBAL_BASE) == (1 << 64) - 1
    assert mem.load_int(GLOBAL_BASE + 8) == 0  # untouched cells read 0


def test_float_store_load():
    mem = Memory(global_bytes=64)
    mem.store_float(GLOBAL_BASE, 2.5)
    assert mem.load_float(GLOBAL_BASE) == 2.5


def test_type_punning_is_bit_exact():
    mem = Memory(global_bytes=64)
    mem.store_float(GLOBAL_BASE, 1.0)
    bits = mem.load_int(GLOBAL_BASE)
    assert bits == float_to_bits(1.0)
    mem.store_int(GLOBAL_BASE + 8, float_to_bits(-3.75))
    assert mem.load_float(GLOBAL_BASE + 8) == -3.75


def test_bits_float_roundtrip():
    for value in (0.0, 1.0, -1.0, 3.14159, 1e300, -1e-300):
        assert bits_to_float(float_to_bits(value)) == value


def test_for_program_initialises_globals():
    program = Program()
    program.add_global("a", 2, [11, 22])
    program.add_global("f", 1, [1.5], is_float=True)
    mem = Memory.for_program(program)
    assert mem.load_int(program.address_of("a")) == 11
    assert mem.load_int(program.address_of("a") + 8) == 22
    assert mem.load_float(program.address_of("f")) == 1.5


def test_snapshot_is_a_copy():
    mem = Memory(global_bytes=64)
    mem.store_int(GLOBAL_BASE, 5)
    snap = mem.snapshot()
    mem.store_int(GLOBAL_BASE, 9)
    assert snap[GLOBAL_BASE] == 5
    assert mem.words_used() == 1
