"""The strongest end-to-end property: on randomly generated programs,
every protection technique, followed by scheduling and register
allocation, preserves fault-free semantics exactly."""

import pytest
from hypothesis import given, settings, strategies as st

from irgen import random_program
from repro.isa import verify_program
from repro.sim import run_program
from repro.transform import (
    PAPER_TECHNIQUES,
    SchedulePolicy,
    Technique,
    allocate_program,
    apply_cfc,
    protect,
    schedule_program,
)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_all_techniques_on_random_programs(seed):
    program = random_program(seed, num_blocks=3, instrs_per_block=9)
    golden = run_program(program)
    assert golden.status.value == "exited"
    for technique in PAPER_TECHNIQUES + (Technique.SWIFT,):
        hardened = protect(program, technique)
        verify_program(hardened)
        binary = allocate_program(hardened)
        verify_program(binary, require_physical=True)
        result = run_program(binary)
        assert result.output == golden.output, (technique, seed)


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_full_stack_composition_random(seed):
    """protect -> CFC -> schedule -> allocate, all composed."""
    program = random_program(seed, num_blocks=2, instrs_per_block=8)
    golden = run_program(program)
    stacked = schedule_program(
        apply_cfc(protect(program, Technique.SWIFTR)),
        SchedulePolicy.CHECKS_LATE,
    )
    binary = allocate_program(stacked)
    verify_program(binary, require_physical=True)
    assert run_program(binary).output == golden.output


@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000),
       trial_seed=st.integers(min_value=0, max_value=1000))
def test_swiftr_campaign_on_random_programs(seed, trial_seed):
    """SWIFT-R keeps random programs overwhelmingly correct under SEUs."""
    from repro.faults import run_campaign

    program = random_program(seed, num_blocks=2, instrs_per_block=8)
    binary = allocate_program(protect(program, Technique.SWIFTR))
    campaign = run_campaign(binary, trials=40, seed=trial_seed)
    assert campaign.unace_percent >= 90.0
