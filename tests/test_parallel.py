"""Process-parallel campaigns: sharding, determinism, telemetry order."""

from repro.faults import run_campaign, run_parallel_campaign
from repro.faults.parallel import _partition, default_jobs
from repro.faults.model import sample_sites
from repro.obs.campaign_log import CampaignLog


def test_partition_contiguous_and_complete():
    sites = sample_sites(0, 100, 10)
    chunks = _partition(sites, 3)
    assert [lo for lo, _ in chunks] == [0, 4, 7]
    rejoined = [site for _, shard in chunks for site in shard]
    assert rejoined == sites
    # More shards than sites: empty shards are dropped.
    assert len(_partition(sites[:2], 5)) == 2


def test_jobs2_matches_jobs1(simple_program):
    log1, log2 = CampaignLog(), CampaignLog()
    serial = run_parallel_campaign(simple_program, trials=24, seed=13,
                                   jobs=1, log=log1)
    parallel = run_parallel_campaign(simple_program, trials=24, seed=13,
                                     jobs=2, log=log2)
    assert serial == parallel
    assert log1.records == log2.records
    assert [r.trial for r in log2.records] == list(range(24))


def test_parallel_matches_plain_run_campaign(simple_program):
    # The sharded runner must agree with run_campaign itself, not just
    # with its own jobs=1 mode.
    baseline = run_campaign(simple_program, trials=24, seed=13)
    parallel = run_parallel_campaign(simple_program, trials=24, seed=13,
                                     jobs=3)
    assert baseline == parallel


def test_parallel_without_log_skips_telemetry(simple_program):
    result = run_parallel_campaign(simple_program, trials=10, seed=5, jobs=2)
    assert result.trials == 10
    assert sum(result.counts.values()) == 10


def test_jobs_zero_uses_all_cores(simple_program):
    assert default_jobs() >= 1
    result = run_parallel_campaign(simple_program, trials=8, seed=1, jobs=0)
    assert result.trials == 8


def test_parallel_log_context_preserved(simple_program):
    log = CampaignLog(context={"benchmark": "simple", "technique": "noft"})
    run_parallel_campaign(simple_program, trials=6, seed=2, jobs=2, log=log)
    exported = log.to_dicts()
    assert len(exported) == 6
    assert all(r["benchmark"] == "simple" for r in exported)
    assert all("fault_landed" in r for r in exported)
