"""MASK: invariant enforcement (paper Section 5, Figure 6)."""

from repro.isa import Imm, MASK64, Opcode, Role, parse_program
from repro.lang import compile_source
from repro.sim import Machine, RunStatus, run_program
from repro.transform import (
    Technique,
    allocate_program,
    apply_mask,
    count_masks,
    mask_function,
    protect,
)
from repro.faults import FaultSite, golden_run, run_with_fault


def figure6_program():
    """The paper's adpcmdec idiom: a 0/1 guard toggled by xor in a loop."""
    return compile_source("""
int calls = 0;
void other() { calls = calls + 1; }
int main() {
    int guard = 0;
    for (int i = 0; i < 20; i++) {
        if (guard != 0) { other(); }
        guard = guard ^ 1;
    }
    print(calls);
    return 0;
}
""")


def test_figure6_mask_inserted():
    masked = apply_mask(figure6_program())
    fn = masked.function("main")
    masks = [i for i in fn.instructions() if i.role is Role.MASK]
    assert masks, "expected a MASK instruction at the loop header"
    # The paper's exact enforcement: and guard, guard, 1.
    assert any(
        i.op is Opcode.AND and i.srcs[1] == Imm(1) and i.dest is i.srcs[0]
        for i in masks
    )


def test_mask_preserves_semantics():
    program = figure6_program()
    golden = run_program(allocate_program(program))
    masked = run_program(allocate_program(apply_mask(program)))
    assert masked.output == golden.output == [10]


def test_mask_squashes_high_bit_faults():
    """A fault in a provably-zero bit of the guard is erased by the
    mask before it can steer the branch (the 63/64 case of Section 5)."""
    program = figure6_program()
    plain = allocate_program(program)
    masked = allocate_program(apply_mask(program))

    def failure_rate(binary):
        machine = Machine(binary)
        golden = golden_run(machine)
        assert golden.status is RunStatus.EXITED
        failures = 0
        trials = 0
        for dyn in range(5, golden.instructions - 5, 3):
            for reg in range(20, 32):
                for bit in (40, 50, 60):   # provably-zero bits
                    site = FaultSite(dyn, reg, bit)
                    result = run_with_fault(machine, site)
                    trials += 1
                    if not (result.status is RunStatus.EXITED
                            and result.output == golden.output):
                        failures += 1
        return failures / trials

    assert failure_rate(masked) < failure_rate(plain)


def test_mask_skip_predicate():
    program = figure6_program()
    fn = program.function("main")
    no_masks = mask_function(fn, program, skip=lambda reg: True)
    assert not any(i.role is Role.MASK for i in no_masks.instructions())


def test_min_bits_threshold():
    program = figure6_program()
    fn = program.function("main")
    strict = mask_function(fn, program, min_bits=64)
    assert not any(i.role is Role.MASK for i in strict.instructions())


def test_count_masks_on_workload():
    from repro.workloads import build

    masked = apply_mask(build("adpcmdec"))
    assert count_masks(masked) >= 2   # encoder + decoder parity guards


def test_mask_on_non_loop_code_is_noop():
    program = parse_program("""
func main(0):
entry:
    li v0, 1
    print v0
    ret
""")
    masked = apply_mask(program)
    assert count_masks(masked) == 0


def test_masks_only_target_live_loop_registers():
    """Registers dead around the loop are not masked."""
    masked = apply_mask(figure6_program())
    for fn in masked:
        for blk in fn.blocks:
            for instr in blk.instructions:
                if instr.role is Role.MASK:
                    # mask is of the form and r, r, keep
                    assert instr.dest is instr.srcs[0]
                    keep = instr.srcs[1].value
                    assert keep != MASK64  # enforces something non-trivial
