"""SWIFT-R: triplication + majority voting (paper Section 3, Figure 3)."""

import pytest

from repro.isa import Opcode, Role, parse_program
from repro.sim import Machine, RunStatus
from repro.transform import (
    ProtectionConfig,
    Technique,
    VoteStyle,
    allocate_program,
    apply_swiftr,
    protect,
)
from repro.faults import FaultSite, run_with_fault, golden_run


def small_program():
    program = parse_program("""
func main(0):
entry:
    li v4, 65536
    load v3, [v4 + 0]
    add v1, v2, v3
    store [v4 + 8], v1
    print v1
    ret
""")
    program.add_global("g", 2, [21])
    program.assign_addresses()
    return program


def test_figure3_triplication():
    swiftr = apply_swiftr(small_program())
    fn = swiftr.function("main")
    instrs = list(fn.instructions())
    adds = [i for i in instrs if i.op is Opcode.ADD]
    assert len(adds) == 3
    assert adds[0].role is Role.ORIGINAL
    assert adds[1].role is Role.REDUNDANT
    assert adds[2].role is Role.REDUNDANT2
    # The three adds write three distinct registers from three distinct
    # register sets.
    dests = {a.dest for a in adds}
    assert len(dests) == 3
    # Load result copied twice.
    load_pos = next(i for i, ins in enumerate(instrs)
                    if ins.op is Opcode.LOAD)
    assert instrs[load_pos + 1].op is Opcode.MOV
    assert instrs[load_pos + 2].op is Opcode.MOV
    assert instrs[load_pos + 1].role is Role.COPY


def test_votes_guard_memory_and_output():
    swiftr = apply_swiftr(small_program())
    fn = swiftr.function("main")
    votes = [i for i in fn.instructions() if i.role is Role.VOTE]
    # Votes before: load address, store address, store value, print value.
    vote_branches = [i for i in votes if i.op is Opcode.BNE]
    assert len(vote_branches) == 4


def test_branching_vote_repairs_each_copy():
    """Exhaustively corrupt each of the three copies at the vote point:
    the program must still produce correct output."""
    program = small_program()
    binary = allocate_program(
        protect(program, Technique.SWIFTR,
                ProtectionConfig(vote_style=VoteStyle.BRANCHING))
    )
    machine = Machine(binary)
    golden = golden_run(machine)
    assert golden.status is RunStatus.EXITED
    repaired = 0
    failures = 0
    trials = 0
    for dyn in range(1, golden.instructions - 1):
        for reg_index in range(16, 32):
            site = FaultSite(dynamic_index=dyn, reg_index=reg_index, bit=13)
            result = run_with_fault(machine, site)
            trials += 1
            if result.recoveries:
                repaired += 1
            if not (result.status is RunStatus.EXITED
                    and result.output == golden.output):
                failures += 1
    assert repaired > 0
    # Residual failures are the paper's windows of vulnerability
    # (Section 3.2): present, but rare.
    assert failures / trials < 0.05


@pytest.mark.parametrize("style", [VoteStyle.BRANCHING, VoteStyle.BRANCHFREE])
def test_vote_styles_preserve_semantics(style, simple_program,
                                        simple_golden):
    config = ProtectionConfig(vote_style=style)
    hardened = allocate_program(
        protect(simple_program, Technique.SWIFTR, config)
    )
    from repro.sim import run_program

    assert run_program(hardened).output == simple_golden.output


def test_branchfree_vote_is_straightline():
    config = ProtectionConfig(vote_style=VoteStyle.BRANCHFREE)
    swiftr = protect(small_program(), Technique.SWIFTR, config)
    fn = swiftr.function("main")
    votes = [i for i in fn.instructions() if i.role is Role.VOTE]
    # Bitwise majority: only and/or/mov, no branches.
    assert votes
    assert all(i.op in (Opcode.AND, Opcode.OR, Opcode.MOV) for i in votes)


def test_branchfree_majority_corrects_any_single_copy():
    """maj(a, b, c) recovers the value even under multi-bit corruption."""
    from hypothesis import given, settings, strategies as st

    @settings(max_examples=200, deadline=None)
    @given(value=st.integers(min_value=0, max_value=(1 << 64) - 1),
           noise=st.integers(min_value=1, max_value=(1 << 64) - 1),
           victim=st.integers(min_value=0, max_value=2))
    def check(value, noise, victim):
        copies = [value, value, value]
        copies[victim] ^= noise
        a, b, c = copies
        maj = (a & b) | (a & c) | (b & c)
        assert maj == value

    check()


def test_swiftr_recovers_from_exhaustive_bit_flips():
    """Every bit of a tripled register flipped right after definition:
    all 64 single-bit faults must be voted away (unACE)."""
    program = parse_program("""
func main(0):
entry:
    li v0, 123456789
    li v1, 1
    add v2, v0, v1
    store [v3 + 0], v2
    print v2
    ret
""")
    # v3 is an address register: point it at the global.
    program.add_global("slot", 1)
    program.assign_addresses()
    text_fix = program.function("main")
    from repro.isa import Imm, Instruction

    text_fix.entry.instructions.insert(
        0,
        Instruction(Opcode.LI,
                    dest=next(iter(
                        i.srcs[0] for i in text_fix.instructions()
                        if i.op is Opcode.STORE
                    )),
                    srcs=(Imm(program.address_of("slot")),)),
    )
    binary = allocate_program(protect(program, Technique.SWIFTR))
    machine = Machine(binary)
    golden = golden_run(machine)
    assert golden.status is RunStatus.EXITED
    correct = 0
    total = 0
    for reg_index in range(0, 32):
        if reg_index == 1:
            continue
        for bit in range(0, 64, 7):
            site = FaultSite(dynamic_index=4, reg_index=reg_index, bit=bit)
            result = run_with_fault(machine, site)
            total += 1
            if (result.status is RunStatus.EXITED
                    and result.output == golden.output):
                correct += 1
    # Every injected fault must be masked or repaired: the fault lands
    # either in a dead register (unACE) or in one protected copy.
    assert correct == total
