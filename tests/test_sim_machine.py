"""Functional simulator semantics: opcode by opcode, plus control flow,
pause/resume, traps, and fault flipping."""

import pytest

from repro.isa import (
    Function,
    IRBuilder,
    Imm,
    MASK64,
    Program,
    parse_program,
)
from repro.sim import Machine, RunStatus, TrapKind, run_program


def run_main(body_builder):
    """Build main with the given builder callback and run it."""
    program = Program()
    fn = Function("main")
    program.add_function(fn)
    b = IRBuilder(fn)
    b.start_block("entry")
    body_builder(b, program)
    return run_program(program)


INT_MIN = -(1 << 63)


@pytest.mark.parametrize("op,a,b,expected", [
    ("add", 2, 3, 5),
    ("add", (1 << 63) - 1, 1, INT_MIN),        # signed overflow wraps
    ("sub", 2, 3, -1),
    ("mul", -4, 5, -20),
    ("mul", 1 << 62, 4, 0),                    # wraps mod 2**64
    ("div", 7, 2, 3),
    ("div", -7, 2, -3),                        # C-style truncation
    ("div", 7, -2, -3),
    ("div", -7, -2, 3),
    ("rem", 7, 3, 1),
    ("rem", -7, 3, -1),                        # sign follows dividend
    ("rem", 7, -3, 1),
    ("and", 0b1100, 0b1010, 0b1000),
    ("or", 0b1100, 0b1010, 0b1110),
    ("xor", 0b1100, 0b1010, 0b0110),
    ("shl", 1, 63, INT_MIN),
    ("shl", 1, 64, 1),                         # amounts taken mod 64
    ("shr", -1, 60, 15),                       # logical: zero fill
    ("sra", -16, 2, -4),                       # arithmetic: sign fill
    ("sra", 16, 2, 4),
    ("cmpeq", 3, 3, 1),
    ("cmpne", 3, 3, 0),
    ("cmplt", -1, 0, 1),                       # signed compare
    ("cmplt", 1, 0, 0),
    ("cmple", 3, 3, 1),
    ("cmpgt", 0, -5, 1),
    ("cmpge", -5, -5, 1),
    ("cmpltu", -1, 0, 0),                      # unsigned: -1 is huge
    ("cmpgeu", -1, 0, 1),
])
def test_binary_semantics(op, a, b, expected):
    method = {"and": "and_", "or": "or_"}.get(op, op)

    def body(builder, program):
        x = builder.li(a)
        y = builder.li(b)
        builder.print_(getattr(builder, method)(x, y))
        builder.ret()

    result = run_main(body)
    assert result.output == [expected]


def test_neg_and_not():
    def body(b, p):
        x = b.li(5)
        b.print_(b.neg(x))
        b.print_(b.not_(x))
        b.ret()

    assert run_main(body).output == [-5, ~5]


def test_div_by_zero_traps():
    def body(b, p):
        x = b.li(1)
        z = b.li(0)
        b.print_(b.div(x, z))
        b.ret()

    result = run_main(body)
    assert result.status is RunStatus.TRAPPED
    assert result.trap_kind is TrapKind.DIV_BY_ZERO


def test_rem_by_zero_traps():
    def body(b, p):
        x = b.li(1)
        z = b.li(0)
        b.print_(b.rem(x, z))
        b.ret()

    assert run_main(body).trap_kind is TrapKind.DIV_BY_ZERO


def test_float_ops_and_conversions():
    def body(b, p):
        x = b.fli(1.5)
        y = b.fli(2.0)
        b.fprint(b.fadd(x, y))
        b.fprint(b.fsub(x, y))
        b.fprint(b.fmul(x, y))
        b.fprint(b.fdiv(x, y))
        i = b.li(-3)
        f = b.cvtif(i)
        b.fprint(f)
        b.print_(b.cvtfi(b.fli(7.9)))     # truncates toward zero
        b.print_(b.fcmplt(x, y))
        b.print_(b.fcmpeq(x, x))
        b.ret()

    result = run_main(body)
    assert result.output == [3.5, -0.5, 3.0, 0.75, -3.0, 7, 1, 1]


def test_float_div_by_zero_is_ieee():
    def body(b, p):
        x = b.fli(1.0)
        z = b.fli(0.0)
        b.fprint(b.fdiv(x, z))
        b.fprint(b.fdiv(b.fneg(x), z))
        b.ret()

    out = run_main(body).output
    assert out[0] == float("inf")
    assert out[1] == float("-inf")


def test_cvtfi_of_inf_traps():
    def body(b, p):
        x = b.fli(1.0)
        z = b.fli(0.0)
        b.print_(b.cvtfi(b.fdiv(x, z)))
        b.ret()

    assert run_main(body).trap_kind is TrapKind.BAD_CONVERT


def test_exit_code():
    def body(b, p):
        b.exit_(3)

    result = run_main(body)
    assert result.status is RunStatus.EXITED
    assert result.exit_code == 3


def test_detect_terminates_with_detected():
    program = parse_program("""
func main(0):
entry:
    detect
""")
    assert run_program(program).status is RunStatus.DETECTED


def test_segfault_on_wild_load():
    def body(b, p):
        addr = b.li(0xDEAD0000)
        b.print_(b.load(addr))
        b.ret()

    result = run_main(body)
    assert result.status is RunStatus.TRAPPED
    assert result.trap_kind is TrapKind.SEGFAULT


def test_hang_detection():
    program = parse_program("""
func main(0):
entry:
    jmp entry
""")
    result = run_program(program, max_instructions=1000)
    assert result.status is RunStatus.HANG
    assert result.instructions == 1000


def test_pause_resume_exactness(simple_program, simple_golden):
    machine = Machine(simple_program)
    machine.reset()
    first = machine.run(10)
    assert first.status is RunStatus.PAUSED
    assert machine.icount == 10
    second = machine.run(25)
    assert machine.icount == 25
    final = machine.run(None)
    assert final.status is RunStatus.EXITED
    assert final.output == simple_golden.output
    assert final.instructions == simple_golden.instructions


def test_pause_at_every_boundary_gives_same_result(simple_program,
                                                   simple_golden):
    total = simple_golden.instructions
    machine = Machine(simple_program)
    for split in (1, total // 3, total - 1):
        machine.reset()
        machine.run(split)
        final = machine.run(None)
        assert final.output == simple_golden.output


def test_snapshot_restore_roundtrip(simple_program, simple_golden):
    machine = Machine(simple_program)
    machine.reset()
    machine.run(12)
    snap = machine.snapshot()
    first = machine.run(None)
    assert first.output == simple_golden.output
    machine.restore(snap)
    assert machine.icount == 12
    second = machine.run(None)
    assert second.output == first.output
    assert second.instructions == first.instructions
    assert second.status is first.status


def test_restore_undoes_corruption(simple_program, simple_golden):
    machine = Machine(simple_program)
    machine.reset()
    machine.run(10)
    snap = machine.snapshot()
    # Wreck the paused state, then restore: the snapshot must win.
    machine.flip_register_bit(5, 40)
    machine.memory.cells.clear()
    machine.output.append(999)
    machine.restore(snap)
    final = machine.run(None)
    assert final.output == simple_golden.output
    assert final.instructions == simple_golden.instructions


def test_snapshot_of_finished_run_rejected(simple_program):
    from repro.errors import SimulationError

    machine = Machine(simple_program)
    machine.run(None)
    with pytest.raises(SimulationError):
        machine.snapshot()


def test_state_matches_detects_divergence(simple_program):
    machine = Machine(simple_program)
    machine.reset()
    machine.run(10)
    snap = machine.snapshot()
    assert machine.state_matches(snap)
    machine.flip_register_bit(6, 3)
    assert not machine.state_matches(snap)
    machine.flip_register_bit(6, 3)
    assert machine.state_matches(snap)
    machine.memory.cells[machine.memory.global_lo] = 0xBAD
    assert not machine.state_matches(snap)


def test_flip_register_bit():
    program = parse_program("""
func main(0):
entry:
    li r5, 0
    print r5
    ret
""")
    machine = Machine(program)
    machine.reset()
    machine.run(1)                 # after li
    machine.flip_register_bit(5, 7)
    result = machine.run(None)
    assert result.output == [128]


def test_reset_restores_memory_and_registers(simple_program):
    machine = Machine(simple_program)
    first = machine.run(None)
    machine.reset()
    second = machine.run(None)
    assert first.output == second.output
    assert first.instructions == second.instructions


def test_call_and_param_passing():
    program = parse_program("""
func addmul(3):
entry:
    param v0, 0
    param v1, 1
    param v2, 2
    mul v3, v1, v2
    add v4, v0, v3
    ret v4

func main(0):
entry:
    li v0, 10
    li v1, 4
    li v2, 5
    call v3, addmul(v0, v1, v2)
    print v3
    ret
""")
    assert run_program(program).output == [30]


def test_void_call_and_immediate_args():
    program = parse_program("""
func emit(1):
entry:
    param v0, 0
    print v0
    ret

func main(0):
entry:
    call emit(42)
    ret
""")
    assert run_program(program).output == [42]


def test_main_return_ends_program(simple_program):
    result = run_program(simple_program)
    assert result.status is RunStatus.EXITED
    assert result.exit_code == 0
