"""Signed-magnitude bound analysis (TRUMP's applicability oracle)."""

from repro.analysis import UNBOUNDED, ValueBounds
from repro.isa import Function, IRBuilder, Imm
from repro.lang import compile_source
from repro.sim import Machine
from repro.transform import allocate_program


def test_constants_and_arithmetic():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    x = b.li(100)           # 7 bits
    y = b.add(x, x)         # 8 bits
    z = b.mul(y, 4)         # 8 + 3 bits
    b.print_(z)
    b.ret()
    vb = ValueBounds(fn)
    assert vb.magnitude_bits(x) == 7
    assert vb.magnitude_bits(y) == 8
    assert vb.magnitude_bits(z) == 11
    assert vb.fits_an_code(z)


def test_unannotated_load_is_unbounded():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    base = b.li(0x10000)
    v = b.load(base)
    b.print_(v)
    b.ret()
    vb = ValueBounds(fn)
    assert vb.magnitude_bits(v) == UNBOUNDED
    assert not vb.fits_an_code(v)


def test_annotated_load_is_bounded():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    base = b.li(0x10000)
    v = b.load(base, value_bits=32)
    w = b.add(v, v)
    b.print_(w)
    b.ret()
    vb = ValueBounds(fn)
    assert vb.magnitude_bits(v) == 32
    assert vb.magnitude_bits(w) == 33
    assert vb.fits_an_code(w)


def test_logical_ops_destroy_bounds_but_and_keeps_them():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    x = b.li(100)
    masked = b.and_(x, 255)
    xored = b.xor(x, 5)
    b.print_(masked)
    b.print_(xored)
    b.ret()
    vb = ValueBounds(fn)
    assert vb.magnitude_bits(masked) == 8
    assert vb.magnitude_bits(xored) == UNBOUNDED


def test_guarded_induction_pinning():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    i = b.li(0)
    b.jmp("loop")
    b.start_block("loop")
    b.add(i, 1, dest=i)
    b.blt(i, 1000, "loop")
    b.start_block("exit")
    b.print_(i)
    b.ret()
    vb = ValueBounds(fn)
    assert i in vb.pinned_registers()
    assert vb.magnitude_bits(i) <= 13
    assert vb.fits_an_code(i)


def test_unguarded_accumulator_not_pinned():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    acc = b.li(0)
    other = b.li(0)
    b.jmp("loop")
    b.start_block("loop")
    b.add(acc, 1, dest=acc)          # never compared against a bound
    b.add(other, 1, dest=other)
    b.blt(other, 10, "loop")
    b.start_block("exit")
    b.print_(acc)
    b.ret()
    vb = ValueBounds(fn)
    assert acc not in vb.pinned_registers()


def test_shift_transfer():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    x = b.li(255)
    left = b.shl(x, 3)
    right = b.shr(x, 4)
    b.print_(left)
    b.print_(right)
    b.ret()
    vb = ValueBounds(fn)
    assert vb.magnitude_bits(left) == 11
    assert vb.magnitude_bits(right) <= 8


def test_compare_is_one_bit():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    x = b.li(5)
    c = b.cmplt(x, 10)
    b.print_(c)
    b.ret()
    assert ValueBounds(fn).magnitude_bits(c) == 1


def test_runtime_soundness_on_workload():
    """Pinned/derived bounds hold on a real execution of adpcm.

    The bound analysis is allowed to be heuristic (DESIGN.md), but it
    must be *empirically* sound on the shipped workloads: recovery
    correctness depends on it.
    """
    from repro.workloads import build

    program = build("adpcmenc")
    # Record claimed bounds per (function, register slot).
    claims = []
    machine = Machine(allocate_program(program))
    for fn in program:
        vb = ValueBounds(fn)
        for reg, bits in vb.bits.items():
            if bits < 64:
                claims.append((fn.name, reg, bits))
    assert claims, "expected at least some bounded registers"
    # Execute the *virtual-register* program and check values directly.
    vmachine = Machine(program)
    result = vmachine.run(None)
    assert result.status.value == "exited"
    # Spot-check: magnitudes of final register values obey the bounds.
    for fn_name, reg, bits in claims:
        key = (fn_name, reg)
        slot = vmachine._slot_cache.get(key)
        if slot is None:
            continue
        value = vmachine.regs[slot]
        signed = value - (1 << 64) if value >= (1 << 63) else value
        assert abs(signed) < (1 << bits) or abs(signed) < (1 << 62), (
            fn_name, reg, bits, signed,
        )
