"""Mini-C semantics, validated by executing generated code."""

import pytest

from repro.errors import SemanticError
from repro.isa import Opcode, verify_program
from repro.lang import compile_source
from repro.sim import run_program
from repro.transform import allocate_program


def run_c(source, **kwargs):
    program = compile_source(source)
    verify_program(program)
    # Register-allocate so recursion is legal too.
    return run_program(allocate_program(program), **kwargs)


def outputs(source):
    result = run_c(source)
    assert result.status.value == "exited", (result.status,
                                             result.trap_detail)
    return result.output


def test_arithmetic_and_precedence():
    assert outputs("""
int main() {
    print(2 + 3 * 4);
    print((2 + 3) * 4);
    print(10 / 3);
    print(-10 / 3);
    print(10 % 3);
    print(-10 % 3);
    print(1 << 10);
    print(-16 >> 2);
    return 0;
}
""") == [14, 20, 3, -3, 1, -1, 1024, -4]


def test_logical_short_circuit_effects():
    # The right operand of && / || must not evaluate when short-circuited.
    assert outputs("""
int hits = 0;
int bump() { hits = hits + 1; return 1; }
int main() {
    int a = 0 && bump();
    print(hits);
    int b = 1 || bump();
    print(hits);
    int c = 1 && bump();
    print(hits);
    print(a); print(b); print(c);
    return 0;
}
""") == [0, 0, 1, 0, 1, 1]


def test_comparisons_and_unary():
    assert outputs("""
int main() {
    print(3 < 4); print(4 <= 4); print(5 > 6); print(6 >= 7);
    print(1 == 1); print(1 != 1);
    print(!0); print(!7);
    print(~0);
    print(-(-5));
    return 0;
}
""") == [1, 1, 0, 0, 1, 0, 1, 0, -1, 5]


def test_globals_arrays_pointers():
    assert outputs("""
int table[4] = { 10, 20, 30, 40 };
int scalar = 5;
int main() {
    int *p = table;
    print(p[2]);
    print(*p);
    p = p + 3;
    print(*p);
    print(p - table);
    scalar = scalar + table[1];
    print(scalar);
    int *q = &table[1];
    *q = 99;
    print(table[1]);
    return 0;
}
""") == [30, 10, 40, 3, 25, 99]


def test_local_static_arrays():
    assert outputs("""
int fill() {
    int buf[4];
    for (int i = 0; i < 4; i++) { buf[i] = i * i; }
    return buf[3];
}
int main() { print(fill()); return 0; }
""") == [9]


def test_floats_and_casts():
    assert outputs("""
float half(float x) { return x / 2.0; }
int main() {
    float f = 7.0;
    print(half(f));
    print((int)(f * 1.5));
    print((float)3 + 0.5);
    float g = 2.5;
    print(g < f);
    print(g == 2.5);
    print(g != 2.5);
    return 0;
}
""") == [3.5, 10, 3.5, 1, 1, 0]


def test_increment_decrement():
    assert outputs("""
int main() {
    int i = 5;
    print(i++);
    print(i);
    print(++i);
    print(i--);
    print(--i);
    int a[2]; a[0] = 1; a[1] = 2;
    int *p = a;
    p++;
    print(*p);
    return 0;
}
""") == [5, 6, 7, 7, 5, 2]


def test_ternary_and_nested_control():
    assert outputs("""
int classify(int x) {
    return x < 0 ? -1 : x == 0 ? 0 : 1;
}
int main() {
    print(classify(-5));
    print(classify(0));
    print(classify(9));
    int total = 0;
    for (int i = 0; i < 10; i++) {
        if (i % 2 == 0) continue;
        if (i == 9) break;
        total += i;
    }
    print(total);
    return 0;
}
""") == [-1, 0, 1, 16]


def test_recursion_post_register_allocation():
    assert outputs("""
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int ack(int m, int n) {
    if (m == 0) { return n + 1; }
    if (n == 0) { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}
int main() {
    print(fib(15));
    print(ack(2, 3));
    return 0;
}
""") == [610, 9]


def test_alloc_builtin():
    assert outputs("""
int main() {
    long *a = alloc(3);
    long *b = alloc(2);
    a[0] = 7; a[2] = 9;
    b[0] = 100;
    print((int)(a[0] + a[2]));
    print((int)b[0]);
    print(b - a);       // bump allocation is contiguous
    return 0;
}
""") == [16, 100, 3]


def test_lsr_builtin():
    assert outputs("""
int main() {
    long x = -1;
    print((int)(lsr(x, 60)));
    return 0;
}
""") == [15]


def test_exit_builtin():
    result = run_c("int main() { print(1); exit(3); print(2); return 0; }")
    assert result.exit_code == 3
    assert result.output == [1]


def test_do_while_executes_at_least_once():
    assert outputs("""
int main() {
    int n = 10;
    do { print(n); n++; } while (n < 10);
    return 0;
}
""") == [10]


def test_long_keeps_full_width():
    assert outputs("""
int main() {
    long big = 4611686018427387904;   // 2^62
    big = big + big;                  // wraps to -2^63
    print(big < 0);
    return 0;
}
""") == [1]


def test_value_bits_annotations_attached():
    program = compile_source("""
int data[4];
int narrow(int x) { return x; }
int main() {
    int v = data[0];
    int w = narrow(v);
    print(w);
    return 0;
}
""")
    main = program.function("main")
    loads = [i for i in main.instructions() if i.op is Opcode.LOAD]
    assert loads and all(i.value_bits == 32 for i in loads)
    calls = [i for i in main.instructions() if i.op is Opcode.CALL]
    assert calls and calls[0].value_bits == 32
    params = [i for i in program.function("narrow").instructions()
              if i.op is Opcode.PARAM]
    assert params[0].value_bits == 32


def test_semantic_errors():
    cases = {
        "int main() { return x; }": "undefined",
        "int main() { int x; int x; return 0; }": "redefinition",
        "int main() { break; }": "break outside",
        "int main() { continue; }": "continue outside",
        "int f() { return 1; } int main() { return f(1); }": "expects 0",
        "int main() { float f = 1.0; int x = f; return 0; }": "cast",
        "int t[2]; int main() { t = 0; return 0; }": "assign",
        "void main() { return 1; }": "void",
        "int main() { int x = 1; int *p = &x; return 0; }": "address",
        "int main() { return g(); }": "undefined function",
    }
    for source, match in cases.items():
        with pytest.raises(SemanticError, match=match):
            compile_source(source)


def test_missing_main():
    with pytest.raises(SemanticError, match="main"):
        compile_source("int helper() { return 0; }")


def test_fused_branch_shapes():
    """Comparisons in conditions fuse into compare-and-branch."""
    program = compile_source("""
int main() {
    int a = 1;
    int b = 2;
    if (a < b) { print(1); }
    if (a >= b) { print(2); }
    if (a == b) { print(3); }
    if (a > b) { print(4); }
    return 0;
}
""")
    ops = [i.op for i in program.function("main").instructions()]
    assert Opcode.BGE in ops and Opcode.BLT in ops and Opcode.BNE in ops
    # No materialised compare results for fused conditions.
    assert Opcode.CMPLT not in ops


def test_global_float_arrays():
    assert outputs("""
float w[3] = { 0.5, 1.5, 2.5 };
int main() {
    float total = 0.0;
    for (int i = 0; i < 3; i++) { total = total + w[i]; }
    print(total);
    return 0;
}
""") == [4.5]
