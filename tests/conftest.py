"""Shared fixtures for the test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.isa import Function, IRBuilder, Program, verify_program
from repro.sim import run_program
from repro.transform import Technique, allocate_program, protect


@pytest.fixture
def simple_program() -> Program:
    """A tiny program with a load, a store, a branch, and a call."""
    program = Program()
    program.add_global("data", 8, [5, 4, 3, 2, 1, 0, 9, 7])
    program.add_global("out", 1)

    triple = Function("triple", num_params=1)
    program.add_function(triple)
    tb = IRBuilder(triple)
    tb.start_block("entry")
    x = tb.param(0)
    tb.ret(tb.mul(x, 3))

    main = Function("main")
    program.add_function(main)
    b = IRBuilder(main)
    b.start_block("entry")
    program.assign_addresses()
    base = b.li(program.address_of("data"))
    i = b.li(0)
    total = b.li(0)
    b.jmp("loop")
    b.start_block("loop")
    offset = b.shl(i, 3)
    address = b.add(base, offset)
    value = b.load(address)
    b.add(total, value, dest=total)
    b.add(i, 1, dest=i)
    b.blt(i, 8, "loop")
    b.start_block("done")
    result = b.call("triple", [total])
    out = b.li(program.address_of("out"))
    b.store(out, result)
    b.print_(result)
    b.ret()
    verify_program(program)
    return program


@pytest.fixture
def simple_golden(simple_program):
    return run_program(simple_program)


def run_protected(program: Program, technique: Technique, **kwargs):
    """Protect, allocate, and run -- the standard test pipeline."""
    binary = allocate_program(protect(program, technique))
    return run_program(binary, **kwargs)
