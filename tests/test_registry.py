"""The campaign ledger: content-addressed run registry, diff, history."""

import gzip
import json
import os

import pytest

from repro.faults import run_campaign
from repro.faults.parallel import run_parallel_campaign
from repro.obs import (
    CampaignLog,
    JsonlSink,
    RegistryError,
    RunRegistry,
    TelemetryError,
    load_telemetry,
    store_campaign,
    store_timing,
)
from repro.obs.registry import (
    build_manifest,
    canonical_json,
    diff_tables,
    history_tables,
    manifest_run_id,
    program_sha256,
    runs_tables,
)
from repro.obs.emit import emit_tables
from repro.transform import Technique, allocate_program, protect
from repro.__main__ import main as cli_main


@pytest.fixture
def swift_binary(simple_program):
    return allocate_program(protect(simple_program, Technique.SWIFT))


@pytest.fixture
def swiftr_binary(simple_program):
    return allocate_program(protect(simple_program, Technique.SWIFTR))


def _campaign_run(binary, trials=60, seed=5, jobs=1, technique="swiftr"):
    log = CampaignLog(context={"technique": technique, "seed": seed})
    if jobs == 1:
        result = run_campaign(binary, trials=trials, seed=seed, log=log)
    else:
        result = run_parallel_campaign(binary, trials=trials, seed=seed,
                                       jobs=jobs, log=log)
    return result, log


def _store(registry, binary, technique="swiftr", seed=5, trials=60,
           jobs=1, tag=""):
    result, log = _campaign_run(binary, trials=trials, seed=seed,
                                jobs=jobs, technique=technique)
    return store_campaign(registry, workload={"source": "simple.c"},
                          technique=technique, seed=seed, result=result,
                          log=log, program=binary, tag=tag)


# ------------------------------------------------------------- run identity
def test_run_id_is_canonical_hash_of_manifest():
    manifest = {"b": 2, "a": {"y": 1, "x": [3, 1]}}
    shuffled = {"a": {"x": [3, 1], "y": 1}, "b": 2}
    assert manifest_run_id(manifest) == manifest_run_id(shuffled)
    assert len(manifest_run_id(manifest)) == 16
    # Canonical JSON has no whitespace and sorted keys.
    assert canonical_json(manifest) == '{"a":{"x":[3,1],"y":1},"b":2}'


def test_manifest_carries_identity_axes(swift_binary):
    manifest = build_manifest(
        workload={"source": "x.c"}, technique="swift",
        config={"seed": 1, "trials": 10},
        code_sha256=program_sha256(swift_binary),
        results={"trials": 10, "outcomes": {"unACE": 10}})
    assert manifest["kind"] == "run_manifest"
    assert manifest["technique"] == "swift"
    assert manifest["environment"]["version"]
    # The code hash tracks the printed binary, so protection changes it.
    assert program_sha256(swift_binary) != "0" * 64


# --------------------------------------------------------- store and resolve
def test_store_resolve_and_cache_hit(tmp_path, swiftr_binary):
    registry = RunRegistry(str(tmp_path / "runs"))
    stored = _store(registry, swiftr_binary, tag="base")
    assert stored.created
    assert os.path.isfile(os.path.join(stored.path, "manifest.json"))
    assert os.path.isfile(os.path.join(stored.path, "trials.jsonl.gz"))

    # Same campaign again: content-addressed cache hit, new tag sticks.
    again = _store(registry, swiftr_binary, tag="rerun")
    assert not again.created
    assert again.run_id == stored.run_id
    entry = registry.entries()[0]
    assert entry["tags"] == ["base", "rerun"]

    assert registry.resolve("base") == stored.run_id
    assert registry.resolve(stored.run_id[:6]) == stored.run_id
    with pytest.raises(RegistryError):
        registry.resolve("no-such-run")


def test_resolve_rejects_ambiguous_prefix(tmp_path, swift_binary,
                                          swiftr_binary):
    registry = RunRegistry(str(tmp_path / "runs"))
    a = _store(registry, swift_binary, technique="swift")
    b = _store(registry, swiftr_binary, technique="swiftr")
    common = os.path.commonprefix([a.run_id, b.run_id])
    with pytest.raises(RegistryError):
        registry.resolve(common)


def test_gc_keeps_tagged_runs_and_reaps_staging(tmp_path, swift_binary,
                                                swiftr_binary):
    registry = RunRegistry(str(tmp_path / "runs"))
    kept = _store(registry, swift_binary, technique="swift", tag="keep")
    doomed = _store(registry, swiftr_binary, technique="swiftr")
    litter = tmp_path / "runs" / ".staging-999-123"
    litter.mkdir()
    removed = registry.gc()
    assert doomed.run_id in removed
    assert not os.path.isdir(doomed.path)
    assert os.path.isdir(kept.path)
    assert not litter.exists()
    assert [e["run"] for e in registry.entries()] == [kept.run_id]


# ------------------------------------------------------------ jobs invariance
def test_manifest_and_artifacts_identical_across_jobs(tmp_path,
                                                      swiftr_binary):
    """The acceptance bar: --jobs must not leak into the ledger."""
    reg1 = RunRegistry(str(tmp_path / "serial"))
    reg4 = RunRegistry(str(tmp_path / "sharded"))
    one = _store(reg1, swiftr_binary, jobs=1)
    four = _store(reg4, swiftr_binary, jobs=4)
    assert one.run_id == four.run_id
    with open(os.path.join(one.path, "manifest.json"), "rb") as f_a, \
            open(os.path.join(four.path, "manifest.json"), "rb") as f_b:
        assert f_a.read() == f_b.read()
    for name, entry in one.manifest["artifacts"].items():
        other = four.manifest["artifacts"][name]
        assert entry["sha256"] == other["sha256"], name
        # And the files on disk really are byte-identical (gzip included).
        path_a = os.path.join(one.path, entry["file"])
        path_b = os.path.join(four.path, other["file"])
        with open(path_a, "rb") as f_a, open(path_b, "rb") as f_b:
            assert f_a.read() == f_b.read(), name


def test_timing_manifest_ignores_wall_clock(tmp_path, swift_binary):
    registry = RunRegistry(str(tmp_path / "runs"))
    record = {"kind": "timing", "benchmark": "b", "technique": "swift",
              "cycles": 1234, "instructions": 1000, "ipc": 0.81,
              "loads": 10, "load_misses": 1, "elapsed": 0.5}
    slow = dict(record, elapsed=99.9)
    first = store_timing(registry, workload={"benchmark": "b"},
                         technique="swift", program=swift_binary,
                         record=record)
    second = store_timing(registry, workload={"benchmark": "b"},
                          technique="swift", program=swift_binary,
                          record=slow)
    assert first.created and not second.created
    assert first.run_id == second.run_id


# ----------------------------------------------------------------- diffing
def test_self_diff_reports_nothing(tmp_path, swiftr_binary):
    registry = RunRegistry(str(tmp_path / "runs"))
    stored = _store(registry, swiftr_binary, tag="base")
    tables = diff_tables(registry, "base", stored.run_id[:8])
    text = emit_tables(tables, "text")
    assert "identical identity axes" in text
    assert "verdict: no significant outcome deltas; no atlas drift" \
        in text


def test_technique_diff_finds_deltas_and_drift(tmp_path, swift_binary,
                                               swiftr_binary):
    registry = RunRegistry(str(tmp_path / "runs"))
    _store(registry, swift_binary, technique="swift", tag="a")
    _store(registry, swiftr_binary, technique="swiftr", tag="b")
    tables = diff_tables(registry, "a", "b")
    text = emit_tables(tables, "text")
    assert "varied axis: technique" in text
    assert "two-proportion score test" in text
    # SWIFT detects (DUE), SWIFT-R repairs: the drift table must anchor
    # at least one changed site to a real instruction.
    drift = next(t for t in tables if t.title.startswith("Atlas drift"))
    assert drift.rows, "expected at least one atlas drift site"
    assert "->" in drift.rows[0][2]


def test_diff_refuses_multi_axis_unless_forced(tmp_path, swift_binary,
                                               swiftr_binary):
    registry = RunRegistry(str(tmp_path / "runs"))
    _store(registry, swift_binary, technique="swift", seed=1, tag="a")
    _store(registry, swiftr_binary, technique="swiftr", seed=2, tag="b")
    with pytest.raises(RegistryError, match="more than one axis"):
        diff_tables(registry, "a", "b")
    tables = diff_tables(registry, "a", "b", force=True)
    assert any("technique" in note for t in tables
               for note in t.notes)


# ----------------------------------------------------------------- history
def test_history_tracks_metric_and_flags_regressions(tmp_path,
                                                     swift_binary,
                                                     swiftr_binary):
    registry = RunRegistry(str(tmp_path / "runs"))
    _store(registry, swiftr_binary, technique="swiftr")
    _store(registry, swift_binary, technique="swift")
    tables = history_tables(registry, metric="unace")
    assert len(tables) == 1
    assert len(tables[0].rows) == 2
    assert "higher is better" in tables[0].title
    # Filtering by technique narrows the trajectory.
    only = history_tables(registry, metric="unace", technique="swift")
    assert len(only[0].rows) == 1
    with pytest.raises(RegistryError, match="unknown history metric"):
        history_tables(registry, metric="bogus")


def test_runs_tables_filter_and_flag_missing(tmp_path, swift_binary):
    registry = RunRegistry(str(tmp_path / "runs"))
    stored = _store(registry, swift_binary, technique="swift",
                    tag="only")
    tables = runs_tables(registry, tag="only")
    assert tables and tables[0].rows[0][0] == stored.run_id[:12]
    assert runs_tables(registry, tag="absent") == []
    # A run whose directory vanished is listed but flagged.
    import shutil
    shutil.rmtree(stored.path)
    tables = runs_tables(registry)
    assert tables[0].rows[0][-1] == "MISSING"


# ----------------------------------------------- satellite: atomic JsonlSink
def test_atomic_sink_renames_only_on_close(tmp_path):
    path = str(tmp_path / "out.jsonl")
    sink = JsonlSink(path, atomic=True)
    sink.open()
    sink.write({"a": 1})
    assert not os.path.exists(path)          # still staged
    sink.close()
    assert os.path.exists(path)
    assert not [n for n in os.listdir(tmp_path) if ".tmp." in n]
    assert load_telemetry(path) == [{"a": 1}]


def test_atomic_sink_aborts_on_exception(tmp_path):
    path = str(tmp_path / "out.jsonl")
    with pytest.raises(RuntimeError):
        with JsonlSink(path, atomic=True) as sink:
            sink.write({"a": 1})
            raise RuntimeError("campaign died")
    # The target is never published; the flushed temp file survives
    # for post-mortems (registry staging dirs reap it wholesale).
    assert not os.path.exists(path)
    temp = [n for n in os.listdir(tmp_path) if ".tmp." in n]
    assert len(temp) == 1
    with open(tmp_path / temp[0]) as handle:
        assert json.loads(handle.read()) == {"a": 1}


def test_atomic_gzip_sink_is_deterministic(tmp_path):
    paths = []
    for name in ("a.jsonl.gz", "b.jsonl.gz"):
        path = str(tmp_path / name)
        with JsonlSink(path, atomic=True) as sink:
            sink.write_many([{"i": i} for i in range(50)])
        paths.append(path)
    with open(paths[0], "rb") as f_a, open(paths[1], "rb") as f_b:
        assert f_a.read() == f_b.read()      # no mtime, no filename


# ------------------------------------------- satellite: hardened telemetry IO
def test_load_telemetry_rejects_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(TelemetryError, match="no telemetry records"):
        load_telemetry(str(path))


def test_load_telemetry_names_the_corrupt_line(tmp_path):
    path = tmp_path / "cut.jsonl"
    path.write_text('{"kind": "trial"}\n{"kind": "tri')
    with pytest.raises(TelemetryError, match=r"cut\.jsonl:2"):
        load_telemetry(str(path))


def test_load_telemetry_rejects_truncated_gzip(tmp_path):
    path = tmp_path / "cut.jsonl.gz"
    blob = gzip.compress(b'{"kind": "trial"}\n' * 20)
    path.write_bytes(blob[: len(blob) // 2])
    with pytest.raises(TelemetryError):
        load_telemetry(str(path))


def test_load_telemetry_missing_file(tmp_path):
    with pytest.raises(TelemetryError, match="cannot read"):
        load_telemetry(str(tmp_path / "nope.jsonl"))


# ----------------------------------------------------------------- CLI paths
def _write_demo(tmp_path):
    source = tmp_path / "demo.c"
    source.write_text(
        "int main() { int t = 0; "
        "for (int i = 0; i < 9; i++) { t += i * i; } print(t); "
        "return 0; }"
    )
    return str(source)


def test_cli_store_runs_diff_history(tmp_path, capsys):
    source = _write_demo(tmp_path)
    runs = str(tmp_path / "runs")
    base = ["--trials", "40", "--seed", "3", "--runs-dir", runs]
    assert cli_main(["campaign", source, "-t", "swift", "--store",
                     "--tag", "a", *base]) == 0
    assert cli_main(["campaign", source, "-t", "swiftr", "--store",
                     "--tag", "b", *base]) == 0
    out = capsys.readouterr().out
    assert "ledger    : stored run" in out

    assert cli_main(["obs", "runs", "--runs-dir", runs]) == 0
    listing = capsys.readouterr().out
    assert "2 run(s)" in listing and "swiftr" in listing

    assert cli_main(["obs", "diff", "a", "b", "--runs-dir", runs]) == 0
    diff = capsys.readouterr().out
    assert "varied axis: technique" in diff
    assert "p" in diff and "Atlas drift" in diff

    assert cli_main(["obs", "diff", "a", "a", "--runs-dir", runs]) == 0
    self_diff = capsys.readouterr().out
    assert "no significant outcome deltas; no atlas drift" in self_diff

    assert cli_main(["obs", "history", "--runs-dir", runs]) == 0
    history = capsys.readouterr().out
    assert "History: unace%" in history

    # JSON mode emits one parseable document per surface.
    assert cli_main(["obs", "runs", "--runs-dir", runs,
                     "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "runs" and doc["tables"]


def test_cli_diff_bad_ref_exits_2(tmp_path, capsys):
    runs = str(tmp_path / "runs")
    assert cli_main(["obs", "diff", "x", "y", "--runs-dir", runs]) == 2
    assert "no stored run matches" in capsys.readouterr().err


def test_cli_summarize_empty_file_exits_1(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert cli_main(["obs", "summarize", str(path)]) == 1
    assert "error:" in capsys.readouterr().err


def test_cli_forensics_json_format(tmp_path, capsys):
    source = _write_demo(tmp_path)
    path = str(tmp_path / "t.jsonl")
    assert cli_main(["campaign", source, "-t", "swiftr", "--trials",
                     "30", "--taint", "--telemetry", path]) == 0
    capsys.readouterr()
    assert cli_main(["obs", "forensics", path,
                     "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "forensics"
    assert any("trials" in t["title"] for t in doc["tables"])


def test_cli_top_once_json_format(tmp_path, capsys):
    source = _write_demo(tmp_path)
    beat = str(tmp_path / "beat.jsonl")
    assert cli_main(["campaign", source, "-t", "swiftr", "--trials",
                     "30", "--heartbeat", beat]) == 0
    capsys.readouterr()
    assert cli_main(["obs", "top", beat, "--once",
                     "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "top" and doc["tables"]


# ------------------------------------------------------------ staging litter
def test_obs_runs_lists_staging_litter(tmp_path, swiftr_binary, capsys):
    """A crashed store leaves a .staging-* dir; ``obs runs`` must list
    it under a STAGING flag instead of erroring, and --gc reclaims it
    while keeping the tagged run."""
    runs = str(tmp_path / "runs")
    registry = RunRegistry(runs)
    stored = _store(registry, swiftr_binary, tag="keep")
    litter = tmp_path / "runs" / ".staging-4242-1700000000000000"
    litter.mkdir()
    (litter / "trials.jsonl.gz").write_bytes(b"\x1f\x8b\x08partial")
    assert registry.staging_dirs() == [litter.name]

    assert cli_main(["obs", "runs", "--runs-dir", runs]) == 0
    out = capsys.readouterr().out
    assert "STAGING" in out and litter.name in out
    assert "--gc" in out                       # reclaim hint
    assert stored.run_id[:12] in out           # real runs still listed

    assert cli_main(["obs", "runs", "--runs-dir", runs, "--gc"]) == 0
    out = capsys.readouterr().out
    assert not litter.exists()
    assert "STAGING" not in out
    assert stored.run_id[:12] in out           # tagged run survives gc


def test_obs_runs_staging_only_ledger(tmp_path, capsys):
    """Litter with no stored runs at all still renders (exit 0)."""
    runs = str(tmp_path / "runs")
    litter = tmp_path / "runs" / ".staging-7-7"
    litter.mkdir(parents=True)
    assert cli_main(["obs", "runs", "--runs-dir", runs]) == 0
    out = capsys.readouterr().out
    assert "STAGING" in out and "0 run(s)" in out
