"""Duplication-engine internals and cross-technique composition."""

import pytest

from repro.errors import TransformError
from repro.isa import (
    Function,
    IRBuilder,
    Opcode,
    Program,
    Role,
    parse_program,
    verify_program,
    vreg,
)
from repro.sim import run_program
from repro.transform import (
    DuplicationEngine,
    Form,
    ProtectionConfig,
    ShadowAssignment,
    Technique,
    allocate_program,
    protect,
    uniform_assignment,
)


def tiny_program():
    return parse_program("""
func main(0):
entry:
    li v0, 10
    add v1, v0, 5
    print v1
    ret
""")


def test_uniform_assignment_covers_all_virtual_ints():
    program = tiny_program()
    assignment = uniform_assignment(program.function("main"), Form.TMR)
    assert assignment.form_of(vreg(0)) is Form.TMR
    assert assignment.form_of(vreg(1)) is Form.TMR
    assert assignment.form_of(vreg(99)) is Form.NONE


def test_engine_materialises_distinct_shadows():
    program = tiny_program()
    fn = program.function("main")
    assignment = uniform_assignment(fn, Form.TMR)
    engine = DuplicationEngine(fn, assignment)
    engine.run()
    shadows = set(assignment.shadow1.values()) | \
        set(assignment.shadow2.values())
    originals = set(assignment.form)
    assert not shadows & originals
    assert len(shadows) == 2 * len(originals)


def test_engine_respects_preassigned_shadows():
    program = tiny_program()
    fn = program.function("main")
    assignment = uniform_assignment(fn, Form.DMR)
    chosen = vreg(500)
    assignment.shadow1[vreg(0)] = chosen
    DuplicationEngine(fn, assignment).run()
    assert assignment.shadow1[vreg(0)] is chosen


def test_tmr_to_an_conversion_requires_a3():
    """Figure 7's 2*r' + r'' trick only reconstructs A=3 codewords."""
    program = parse_program("""
func main(0):
entry:
    li v0, 1
    xor v1, v0, 2
    add v2, v1, 3
    print v2
    ret
""")
    fn = program.function("main")
    from repro.transform.trump import trump_assignment

    config = ProtectionConfig(an_power=3)   # A = 7
    assignment = trump_assignment(fn, config, hybrid=True)
    if any(form is Form.AN for form in assignment.form.values()) and any(
        form is Form.TMR for form in assignment.form.values()
    ):
        with pytest.raises(TransformError, match="A = 3"):
            DuplicationEngine(fn, assignment, config).run()


def test_roles_partition_instructions():
    hardened = protect(tiny_program(), Technique.SWIFTR)
    fn = hardened.function("main")
    roles = {}
    for instr in fn.instructions():
        roles[instr.role] = roles.get(instr.role, 0) + 1
    assert roles[Role.ORIGINAL] == 4
    assert roles[Role.REDUNDANT] == roles[Role.REDUNDANT2]
    assert Role.VOTE in roles


def test_detect_reachability_only_for_swift():
    swiftr = protect(tiny_program(), Technique.SWIFTR)
    assert not any(i.op is Opcode.DETECT
                   for fn in swiftr for i in fn.instructions())
    swift = protect(tiny_program(), Technique.SWIFT)
    assert any(i.op is Opcode.DETECT
               for fn in swift for i in fn.instructions())


def test_double_protection_still_correct():
    """Protecting an already protected program is wasteful but must not
    change semantics (the engine treats inserted checks as ordinary
    instructions)."""
    program = tiny_program()
    golden = run_program(program)
    double = protect(protect(program, Technique.SWIFTR), Technique.SWIFTR)
    verify_program(double)
    result = run_program(allocate_program(double))
    assert result.output == golden.output


def test_mask_then_swiftr_composition():
    from repro.transform import apply_mask
    from repro.workloads import build

    program = build("adpcmdec")
    golden = run_program(allocate_program(program))
    stacked = allocate_program(protect(apply_mask(program),
                                       Technique.SWIFTR))
    assert run_program(stacked).output == golden.output


def test_engine_output_is_verified_ir():
    """Every technique yields verifier-clean IR on a gnarly CFG."""
    program = parse_program("""
func main(0):
entry:
    li v0, 0
    li v1, 0
    jmp outer
outer:
    li v2, 0
    jmp inner
inner:
    add v1, v1, v2
    add v2, v2, 1
    blt v2, 3, inner
latch:
    add v0, v0, 1
    blt v0, 4, outer
exit:
    print v1
    ret
""")
    golden = run_program(program)
    for technique in Technique:
        hardened = protect(program, technique)
        verify_program(hardened)
        assert run_program(allocate_program(hardened)).output == \
            golden.output, technique


def test_store_value_immediate_not_checked():
    """Immediate store values cannot be faulted; no value check is
    emitted for them (only the address is validated)."""
    program = parse_program("""
func main(0):
entry:
    li v0, 65536
    store [v0 + 0], 7
    ret
""")
    program.add_global("g", 1)
    hardened = protect(program, Technique.SWIFTR)
    fn = hardened.function("main")
    # Hot vote entry points are BNE; the cold tie-breaker is BEQ.
    vote_branches = [i for i in fn.instructions()
                     if i.role is Role.VOTE and i.op is Opcode.BNE]
    assert len(vote_branches) == 1   # address only
