"""The telemetry layer: spans, metrics, campaign logs, sinks, CLI."""

import json

import pytest

from repro.faults import FaultSite, run_campaign, run_with_fault
from repro.faults.campaign import CampaignResult
from repro.faults.outcomes import Outcome
from repro.obs import (
    CampaignLog,
    JsonlSink,
    detection_latency,
    read_jsonl,
    summarize_path,
    summarize_records,
)
from repro.obs import metrics, spans
from repro.sim import Machine, RunStatus
from repro.transform import Technique, allocate_program, protect
from repro.__main__ import main as cli_main


@pytest.fixture(autouse=True)
def clean_obs_state():
    """Telemetry state is process-global; isolate every test."""
    spans.disable()
    spans.collector().clear()
    metrics.registry().reset()
    yield
    spans.disable()
    spans.collector().clear()
    metrics.registry().reset()


@pytest.fixture
def swiftr_binary(simple_program):
    return allocate_program(protect(simple_program, Technique.SWIFTR))


@pytest.fixture
def swift_binary(simple_program):
    return allocate_program(protect(simple_program, Technique.SWIFT))


# ------------------------------------------------------------------- metrics
def test_counter_and_gauge():
    registry = metrics.MetricsRegistry()
    counter = registry.counter("c")
    counter.inc()
    counter.inc(4)
    assert registry.counter("c").value == 5          # idempotent constructor
    gauge = registry.gauge("g")
    gauge.set(2.5)
    assert registry.gauge("g").value == 2.5


def test_histogram_buckets():
    histogram = metrics.Histogram("h", buckets=(1, 10, 100))
    for value in (0, 1, 5, 50, 5000):
        histogram.observe(value)
    # <=1: {0, 1}, <=10: {5}, <=100: {50}, overflow: {5000}
    assert histogram.counts == [2, 1, 1, 1]
    assert histogram.count == 5
    assert histogram.mean == pytest.approx(5056 / 5)
    with pytest.raises(ValueError):
        metrics.Histogram("bad", buckets=(10, 1))


def test_histogram_boundary_values_land_in_their_bucket():
    histogram = metrics.Histogram("h", buckets=(1, 10, 100))
    for edge in (1, 10, 100):            # "<= bucket" is inclusive
        histogram.observe(edge)
    assert histogram.counts == [1, 1, 1, 0]
    histogram.observe(101)               # first value past the top edge
    assert histogram.counts == [1, 1, 1, 1]


def test_histogram_above_top_bucket_overflows():
    histogram = metrics.Histogram("h", buckets=(1, 2))
    histogram.observe(10 ** 9)
    assert histogram.counts == [0, 0, 1]
    assert histogram.count == 1
    assert histogram.mean == 10 ** 9


def test_empty_histogram_summarizes_cleanly():
    histogram = metrics.Histogram("h", buckets=(1, 2))
    assert histogram.count == 0
    assert histogram.mean == 0.0
    record = histogram.to_dict()
    assert record["counts"] == [0, 0, 0]
    # An exported empty histogram renders without dividing by zero.
    summary = summarize_records([record])
    assert "metric" in summary


def test_registry_snapshot_and_reset():
    registry = metrics.MetricsRegistry()
    registry.counter("a").inc()
    registry.gauge("b").set(1.0)
    registry.histogram("c", buckets=(1, 2)).observe(1)
    snapshot = registry.snapshot()
    assert [record["type"] for record in snapshot] == \
        ["counter", "gauge", "histogram"]
    assert all(record["kind"] == "metric" for record in snapshot)
    registry.reset()
    assert registry.snapshot() == []


# --------------------------------------------------------------------- spans
def test_span_collection_gated_on_enable():
    with spans.span("off"):
        pass
    assert spans.collector().snapshot() == []
    spans.enable()
    with spans.span("on", tag="x") as sp:
        pass
    assert sp.elapsed >= 0.0
    collected = spans.collector().drain()
    assert [s.name for s in collected] == ["on"]
    assert collected[0].to_dict()["tag"] == "x"
    assert spans.collector().snapshot() == []


def test_span_nesting_records_parent():
    spans.enable()
    with spans.span("outer"):
        with spans.span("inner"):
            pass
    inner, outer = spans.collector().drain()
    assert (inner.name, inner.parent) == ("inner", "outer")
    assert outer.parent is None
    assert "parent" not in outer.to_dict()


def test_pipeline_emits_spans(simple_program):
    spans.enable()
    allocate_program(protect(simple_program, Technique.SWIFTR))
    names = {s.name for s in spans.collector().drain()}
    assert {"protect", "regalloc"} <= names


# ------------------------------------------------- campaign log + latencies
def test_campaign_log_matches_result(swiftr_binary):
    log = CampaignLog(context={"technique": "swiftr"})
    result = run_campaign(swiftr_binary, trials=80, seed=3, log=log)
    assert len(log) == 80
    assert log.outcome_counts() == \
        {o.value: n for o, n in result.counts.items()}
    records = log.to_dicts()
    assert all(r["kind"] == "trial" and r["technique"] == "swiftr"
               for r in records)
    recovered = [r for r in records if r["recovered"]]
    assert len(recovered) == result.recoveries
    # Every recovered run has a measured detection latency...
    assert all(r["detection_latency"] is not None for r in recovered)
    # ...and non-recovered, non-detected runs have none.
    silent = [r for r in records
              if not r["recovered"] and r["status"] != "detected"]
    assert all(r["detection_latency"] is None for r in silent)


def test_detection_latency_from_swift_checks(swift_binary):
    log = CampaignLog()
    result = run_campaign(swift_binary, trials=80, seed=3, log=log)
    detected = [r for r in log.to_dicts() if r["outcome"] == "DUE"]
    assert len(detected) == result.count(Outcome.DETECTED)
    assert detected, "SWIFT should detect some faults at 80 trials"
    for record in detected:
        assert record["status"] == "detected"
        assert record["detection_latency"] == \
            record["instructions"] - record["dynamic_index"]


def test_first_recovery_icount_is_exact(swiftr_binary):
    """Replaying a logged fault site reproduces its latency."""
    log = CampaignLog()
    run_campaign(swiftr_binary, trials=80, seed=3, log=log)
    recovered = [r for r in log.records if r.recovered]
    assert recovered
    machine = Machine(swiftr_binary)
    for record in recovered[:5]:
        site = FaultSite(dynamic_index=record.dynamic_index,
                         reg_index=record.reg_index, bit=record.bit)
        faulty = run_with_fault(machine, site)
        assert faulty.first_recovery_icount is not None
        assert faulty.first_recovery_icount > site.dynamic_index
        assert detection_latency(site, faulty) == record.detection_latency


def test_campaign_metrics_recorded(swiftr_binary):
    spans.enable()
    result = run_campaign(swiftr_binary, trials=40, seed=1,
                          log=CampaignLog())
    registry = metrics.registry()
    assert registry.counter("campaign.trials").value == 40
    assert registry.counter("campaign.recovered_runs").value == \
        result.recoveries
    histogram = registry.histogram("campaign.detection_latency")
    assert histogram.count >= result.recoveries


# ------------------------------------------------------------ merged shards
def test_merged_shards_combine():
    a = CampaignResult(golden_instructions=100)
    b = CampaignResult(golden_instructions=100)
    a.record(Outcome.UNACE, recovered=True)
    b.record(Outcome.SDC, recovered=False)
    merged = a.merged(b)
    assert merged.trials == 2
    assert merged.recoveries == 1
    assert merged.golden_instructions == 100
    assert merged.count(Outcome.UNACE) == 1
    assert merged.count(Outcome.SDC) == 1


def test_merged_rejects_different_binaries():
    a = CampaignResult(golden_instructions=100)
    b = CampaignResult(golden_instructions=200)
    with pytest.raises(ValueError, match="different binaries"):
        a.merged(b)
    # A shard with no golden fingerprint adopts the other's.
    c = CampaignResult(golden_instructions=0)
    assert a.merged(c).golden_instructions == 100


# ------------------------------------------------------------------- sinks
def test_jsonl_round_trip(tmp_path, swiftr_binary):
    path = str(tmp_path / "t.jsonl")
    log = CampaignLog(context={"benchmark": "simple"})
    run_campaign(swiftr_binary, trials=30, seed=0, log=log)
    with JsonlSink(path) as sink:
        sink.write_many(log.to_dicts())
    records = read_jsonl(path)
    assert len(records) == 30
    assert records == log.to_dicts()


def test_jsonl_gzip_round_trip(tmp_path):
    path = str(tmp_path / "t.jsonl.gz")
    records = [{"kind": "trial", "trial": i} for i in range(500)]
    with JsonlSink(path) as sink:
        sink.write_many(records)
    assert sink.written == 500
    # The file really is gzip, and reads back transparently.
    with open(path, "rb") as handle:
        assert handle.read(2) == b"\x1f\x8b"
    assert read_jsonl(path) == records


def test_sink_flushes_on_exception(tmp_path):
    path = str(tmp_path / "t.jsonl")
    with pytest.raises(RuntimeError, match="mid-campaign"):
        with JsonlSink(path) as sink:
            sink.write({"kind": "trial", "trial": 0})
            sink.write({"kind": "trial", "trial": 1})
            raise RuntimeError("mid-campaign crash")
    # Both buffered records survived the unwind.
    assert [r["trial"] for r in read_jsonl(path)] == [0, 1]


def test_sink_buffers_until_threshold(tmp_path):
    import os

    path = str(tmp_path / "t.jsonl")
    sink = JsonlSink(path, buffer_size=10)
    for i in range(9):
        sink.write({"trial": i})
    assert not os.path.exists(path)       # nothing flushed yet
    sink.write({"trial": 9})              # tenth record crosses the line
    assert len(read_jsonl(path)) == 10
    sink.write({"trial": 10})
    sink.close()
    assert len(read_jsonl(path)) == 11


def test_summarize_matches_campaign(tmp_path, swiftr_binary):
    path = str(tmp_path / "t.jsonl")
    log = CampaignLog()
    result = run_campaign(swiftr_binary, trials=60, seed=0, log=log)
    with JsonlSink(path) as sink:
        sink.write_many(log.to_dicts())
    summary = summarize_path(path)
    assert f"Campaign outcomes ({result.trials} trials" in summary
    assert f"recovery fired in {result.recoveries}" in summary
    for outcome, count in result.counts.items():
        assert outcome.value in summary
    if log.latencies():
        assert "Detection latency" in summary


def test_summarize_mixed_kinds():
    records = [
        {"kind": "trial", "benchmark": "a", "technique": "swiftr",
         "outcome": "unACE", "recovered": False, "detection_latency": None},
        {"kind": "trial", "benchmark": "b", "technique": "noft",
         "outcome": "SDC", "recovered": False, "detection_latency": None},
        {"kind": "span", "name": "protect", "duration": 0.25},
        {"kind": "timing", "benchmark": "a", "technique": "noft",
         "cycles": 10, "instructions": 20, "ipc": 2.0},
        {"kind": "metric", "type": "counter", "name": "x", "value": 1},
    ]
    summary = summarize_records(records)
    assert "Per-cell breakdown" in summary       # two distinct cells
    assert "Timing cells" in summary
    assert "Spans" in summary
    assert "Other records" in summary            # unknown kinds survive
    assert "metric" in summary
    assert summarize_records([]) == "(no telemetry records)"


def test_summarize_unknown_kinds_show_count_and_keys():
    records = [
        {"kind": "mystery", "alpha": 1, "beta": 2},
        {"kind": "mystery", "alpha": 3, "gamma": 4},
        {"kind": "metric", "type": "counter", "name": "x", "value": 1},
    ]
    summary = summarize_records(records)
    assert "Other records" in summary
    assert "sample keys" in summary
    mystery_row = next(line for line in summary.splitlines()
                       if line.startswith("mystery"))
    assert "2" in mystery_row
    # Union of keys across samples, minus the discriminator.
    for key in ("alpha", "beta", "gamma"):
        assert key in mystery_row
    metric_row = next(line for line in summary.splitlines()
                      if line.startswith("metric"))
    assert "name" in metric_row and "value" in metric_row


# --------------------------------------------------------------- harnesses
def test_evaluate_reliability_telemetry(tmp_path):
    from repro.eval import evaluate_reliability

    path = str(tmp_path / "fig8.jsonl")
    sink = JsonlSink(path)
    results = evaluate_reliability(
        benchmarks=["crc32"], trials=20, seed=1,
        techniques=[Technique.NOFT, Technique.SWIFTR], telemetry=sink)
    sink.close()
    records = read_jsonl(path)
    assert len(records) == 40
    swiftr = [r for r in records if r["technique"] == "swiftr"]
    assert len(swiftr) == 20
    assert all(r["benchmark"] == "crc32" for r in records)
    cell = results.cell("crc32", Technique.SWIFTR)
    recovered = sum(1 for r in swiftr if r["recovered"])
    assert recovered == cell.recoveries


def test_evaluate_performance_telemetry(tmp_path):
    from repro.eval import evaluate_performance

    path = str(tmp_path / "fig9.jsonl")
    sink = JsonlSink(path)
    results = evaluate_performance(
        benchmarks=["crc32"],
        techniques=[Technique.NOFT, Technique.SWIFTR], telemetry=sink)
    sink.close()
    records = read_jsonl(path)
    assert [r["kind"] for r in records] == ["timing", "timing"]
    by_tech = {r["technique"]: r for r in records}
    assert by_tech["noft"]["cycles"] == \
        results.cycles("crc32", Technique.NOFT)
    assert by_tech["swiftr"]["cycles"] > by_tech["noft"]["cycles"]


# --------------------------------------------------------------------- CLI
def test_cli_campaign_telemetry_and_summarize(tmp_path, capsys):
    source = tmp_path / "demo.c"
    source.write_text(
        "int main() { int t = 0; "
        "for (int i = 0; i < 9; i++) { t += i * i; } print(t); return 0; }"
    )
    path = str(tmp_path / "t.jsonl")
    assert cli_main(["campaign", str(source), "-t", "swiftr",
                     "--trials", "40", "--telemetry", path]) == 0
    out = capsys.readouterr()
    assert "unACE" in out.out
    assert path in out.err
    records = read_jsonl(path)
    trials = [r for r in records if r["kind"] == "trial"]
    assert len(trials) == 40
    kinds = {r["kind"] for r in records}
    assert "span" in kinds and "metric" in kinds
    # Each line is valid standalone JSON with a null-able latency field.
    with open(path) as handle:
        first = json.loads(handle.readline())
    assert "detection_latency" in first

    assert cli_main(["obs", "summarize", path]) == 0
    summary = capsys.readouterr().out
    assert "Campaign outcomes (40 trials" in summary
    assert "Spans" in summary


def test_cli_gzip_telemetry_round_trip(tmp_path, capsys):
    """Every obs subcommand accepts .jsonl.gz transparently."""
    source = tmp_path / "demo.c"
    source.write_text(
        "int main() { int t = 1; "
        "for (int i = 1; i < 8; i++) { t = t * i + 1; } print(t); "
        "return 0; }"
    )
    path = str(tmp_path / "t.jsonl.gz")
    assert cli_main(["campaign", str(source), "-t", "swiftr",
                     "--trials", "30", "--taint",
                     "--telemetry", path]) == 0
    capsys.readouterr()
    # Really gzip on disk, and the reader sees the same records.
    with open(path, "rb") as handle:
        assert handle.read(2) == b"\x1f\x8b"
    records = read_jsonl(path)
    assert sum(1 for r in records if r["kind"] == "trial") == 30

    assert cli_main(["obs", "summarize", path]) == 0
    summary = capsys.readouterr().out
    assert "Campaign outcomes (30 trials" in summary

    assert cli_main(["obs", "forensics", path]) == 0
    assert "mechanism" in capsys.readouterr().out

    trace_out = str(tmp_path / "t.trace.json")
    assert cli_main(["obs", "export-trace", path, "-o", trace_out]) == 0
    with open(trace_out) as handle:
        assert json.load(handle)["traceEvents"]


def test_cli_adaptive_campaign_telemetry(tmp_path, capsys):
    source = tmp_path / "demo.c"
    source.write_text(
        "int main() { int t = 0; "
        "for (int i = 0; i < 9; i++) { t += i * i; } print(t); "
        "return 0; }"
    )
    path = str(tmp_path / "t.jsonl")
    assert cli_main(["campaign", str(source), "-t", "swiftr",
                     "--adaptive", "--ci-width", "8",
                     "--telemetry", path]) == 0
    out = capsys.readouterr().out
    assert "estimate" in out and "half-width" in out
    records = read_jsonl(path)
    batches = [r for r in records if r["kind"] == "adaptive_batch"]
    assert batches
    assert batches[-1]["met"] is True
    trials = [r for r in records if r["kind"] == "trial"]
    assert len(trials) == batches[-1]["total_trials"]

    assert cli_main(["obs", "summarize", path]) == 0
    summary = capsys.readouterr().out
    assert "Adaptive batches" in summary


def test_cli_fig9_telemetry(tmp_path, capsys):
    path = str(tmp_path / "fig9.jsonl")
    assert cli_main(["fig9", "--benchmarks", "crc32",
                     "--telemetry", path]) == 0
    assert "Figure 9" in capsys.readouterr().out
    kinds = {r["kind"] for r in read_jsonl(path)}
    assert "timing" in kinds and "span" in kinds


# --------------------------------------------------- machine public surface
def test_machine_current_location_and_read_dest(simple_program):
    machine = Machine(simple_program)
    machine.reset()
    result = machine.run(3)
    assert result.status is RunStatus.PAUSED
    function, block, index = machine.current_location()
    assert function == "main"
    assert block == "entry"
    assert index == 3
    instr = machine.next_instruction()
    machine.run(4)
    value = machine.read_dest(instr, function)
    if instr.dest is not None:
        assert value is not None
    # Finished machines have no location.
    machine.run(None)
    assert machine.current_location() is None


def test_read_dest_signed_view(simple_program):
    machine = Machine(simple_program)
    machine.reset()
    machine.run(1)
    instr = machine.next_instruction()
    machine.run(2)
    if instr.dest is not None and not instr.dest.is_float:
        machine._current_function = "main"
        slot = machine.slot_of(instr.dest)
        machine.regs[slot] = (1 << 64) - 1       # two's-complement -1
        assert machine.read_dest(instr, "main") == -1
