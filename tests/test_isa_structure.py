"""Blocks, functions, programs, and the IR builder."""

import pytest

from repro.errors import IRError
from repro.isa import (
    Function,
    GLOBAL_BASE,
    IRBuilder,
    Opcode,
    Program,
    verify_program,
)


def test_block_terminator_views():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    b.li(1)
    b.li(2)
    b.ret()
    blk = fn.entry
    assert blk.terminator.op is Opcode.RET
    assert len(blk.body) == 2
    assert not blk.falls_through


def test_conditional_branch_falls_through():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    x = b.li(1)
    b.beq(x, 0, "other")
    b.start_block("mid")
    b.jmp("other")
    b.start_block("other")
    b.ret()
    assert fn.blocks[0].falls_through
    assert not fn.blocks[1].falls_through
    assert list(fn.blocks[0].branch_targets()) == ["other"]


def test_duplicate_block_names_rejected():
    fn = Function("f")
    fn.add_block("entry")
    with pytest.raises(IRError):
        fn.add_block("entry")


def test_new_label_avoids_existing_and_reserved():
    fn = Function("f")
    fn.add_block(".L1")
    fn.reserve_labels({".L2"})
    label = fn.new_label()
    assert label not in (".L1", ".L2")


def test_insert_block_after():
    fn = Function("f")
    a = fn.add_block("a")
    c = fn.add_block("c")
    b = fn.insert_block_after(a, "b")
    assert [blk.name for blk in fn.blocks] == ["a", "b", "c"]


def test_renumber_pool_reserves_used_registers():
    from repro.isa import Instruction, vreg

    fn = Function("f")
    blk = fn.add_block("entry")
    blk.append(Instruction(Opcode.MOV, dest=vreg(41), srcs=(vreg(40),)))
    blk.append(Instruction(Opcode.RET))
    fn.renumber_pool()
    assert fn.pool.new_int().index == 42


def test_program_globals_layout():
    program = Program()
    a = program.add_global("a", 4)
    b = program.add_global("b", 2, [7, 8])
    program.assign_addresses()
    assert a.address == GLOBAL_BASE
    assert b.address == GLOBAL_BASE + 32
    assert program.global_segment_bytes() == 48
    assert program.address_of("b") == b.address


def test_program_duplicate_names_rejected():
    program = Program()
    program.add_global("g", 1)
    with pytest.raises(IRError):
        program.add_global("g", 2)
    program.add_function(Function("f"))
    with pytest.raises(IRError):
        program.add_function(Function("f"))


def test_global_initializer_bounds():
    program = Program()
    with pytest.raises(IRError):
        program.add_global("g", 1, [1, 2, 3])
    with pytest.raises(IRError):
        program.add_global("h", 0)


def test_entry_function_lookup():
    program = Program()
    with pytest.raises(IRError):
        _ = program.entry_function
    program.add_function(Function("main"))
    assert program.entry_function.name == "main"


def test_verify_accepts_fixture(simple_program):
    verify_program(simple_program)


def test_num_instructions(simple_program):
    assert simple_program.num_instructions() > 10
