"""Program-anchored reliability atlas: anchoring, weighting, merging."""

import json

import pytest

from repro.faults import run_campaign, run_parallel_campaign
from repro.obs import CampaignLog
from repro.obs.atlas import (
    ATLAS_SCHEMA_VERSION,
    Atlas,
    AtlasAccumulator,
    NEVER_LANDED_LOC,
    UNMAPPED_LOC,
    atlas_from_records,
    collect_site_locations,
)
from repro.sim import Machine
from repro.transform import Technique, allocate_program, protect

TRIALS = 40
SEED = 11


@pytest.fixture
def binary(simple_program):
    return allocate_program(protect(simple_program, Technique.SWIFTR))


def _build_atlas(binary, trials=TRIALS, seed=SEED, taint=False):
    acc = AtlasAccumulator()
    log = CampaignLog()
    result = run_campaign(binary, trials=trials, seed=seed, log=log,
                          taint=taint, atlas=acc)
    return acc, log, result


def test_counts_match_campaign_result(binary):
    acc, log, result = _build_atlas(binary)
    assert acc.trials == result.trials == TRIALS
    assert acc.never_landed == result.never_landed
    assert acc.golden_instructions == result.golden_instructions
    # Every trial lands in exactly one (loc, stratum, outcome) cell.
    total = sum(n for strata in acc.counts.values()
                for outcomes in strata.values()
                for n in outcomes.values())
    assert total == TRIALS
    atlas = Atlas.from_accumulator(acc)
    folded = {}
    for row in atlas.site_rows():
        for outcome, n in row["counts"].items():
            folded[outcome] = folded.get(outcome, 0) + n
    assert folded == {o.value: n for o, n in result.counts.items()}


def test_anchored_locations_match_program(binary):
    acc, log, _ = _build_atlas(binary)
    # Location strings name real (function, block, index) coordinates.
    functions = {fn.name: fn for fn in binary}
    for loc in acc.counts:
        if loc.startswith("("):
            continue
        head, _, index = loc.rpartition("/")
        func, _, block = head.rpartition("/")
        fn = functions[func]
        blk = next(b for b in fn.blocks if b.name == block)
        assert 0 <= int(index) < len(blk.instructions)


def test_collect_site_locations_past_end(binary):
    machine = Machine(binary)
    machine.run()
    golden = machine.icount
    locations = collect_site_locations(
        machine, [0, golden - 1, golden, golden + 100])
    assert 0 in locations
    assert golden - 1 in locations
    assert golden not in locations      # at-end: nothing executes there
    assert golden + 100 not in locations


def test_jobs_invariant_bit_identical(binary):
    serial = AtlasAccumulator()
    run_parallel_campaign(binary, trials=TRIALS, seed=SEED, jobs=1,
                          taint=True, atlas=serial)
    sharded = AtlasAccumulator()
    run_parallel_campaign(binary, trials=TRIALS, seed=SEED, jobs=2,
                          taint=True, atlas=sharded)
    a = Atlas.from_accumulator(serial, context={"technique": "swiftr"})
    b = Atlas.from_accumulator(sharded, context={"technique": "swiftr"})
    assert a.to_json() == b.to_json()


def test_merge_refuses_different_binaries():
    a, b = AtlasAccumulator(), AtlasAccumulator()
    a.golden_instructions = 100
    b.golden_instructions = 200
    with pytest.raises(ValueError, match="different binaries"):
        a.merge_from(b)


def test_roundtrip_and_schema_version(binary):
    acc, _, _ = _build_atlas(binary, taint=True)
    atlas = Atlas.from_accumulator(acc, context={"seed": SEED})
    text = atlas.to_json()
    again = Atlas.from_json(text)
    assert again.to_json() == text
    assert again.top_escapes() == atlas.top_escapes()
    # The escapes feed carries its own versioned envelope.
    feed = json.loads(atlas.escapes_json(5))
    assert feed["kind"] == "atlas_escapes"
    assert feed["schema_version"] == ATLAS_SCHEMA_VERSION
    assert feed["trials"] == acc.trials
    # Version discipline: any other version (or kind) is refused.
    payload = json.loads(text)
    payload["schema_version"] = ATLAS_SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema version"):
        Atlas(payload)
    with pytest.raises(ValueError, match="not an atlas"):
        Atlas({"kind": "bench_meta"})


def test_escapes_agree_with_forensics(simple_program):
    from repro.obs import analyze_log

    # Unprotected: faults actually leak, so escape routes exist.
    unprotected = allocate_program(
        protect(simple_program, Technique.NOFT))
    acc, log, _ = _build_atlas(unprotected, trials=120, taint=True)
    atlas = Atlas.from_accumulator(acc)
    report = analyze_log(log)
    expected = set()
    for attribution in report.attributions:
        event = attribution.get("event")
        if attribution["outcome"] in ("SDC", "SEGV", "Hang") and event:
            expected.add((attribution["mechanism"], event.get("loc"),
                          event.get("instr")))
    edges = {(e["mechanism"], e["to"], e["instr"])
             for e in atlas.payload["edges"]}
    # Every decisive escape forensics names shows up as an atlas edge,
    # verbatim (same mechanism, location, instruction) -- and nothing
    # else does.
    assert expected
    assert expected == edges
    # The ranked feed's routes are drawn from those same edges.
    routes = {(route["mechanism"], route["to"], route["instr"])
              for entry in atlas.top_escapes(1000)
              for route in entry["routes"]}
    assert routes
    assert routes <= edges


def test_stratified_weighting_synthetic():
    locations = {5: ("f/entry/0", "mov r1, r2"),
                 9: ("f/entry/1", "add r3, r1, 1")}
    trials = []
    # Stratum "a": 2 trials at loc 5, one SDC.  Stratum "b": 2 trials
    # at loc 9, both unACE.
    for i, (idx, stratum, outcome) in enumerate([
            (5, "a", "SDC"), (5, "a", "unACE"),
            (9, "b", "unACE"), (9, "b", "unACE")]):
        trials.append({"kind": "trial", "trial": i, "dynamic_index": idx,
                       "outcome": outcome, "fault_landed": True,
                       "stratum": stratum})
    acc = AtlasAccumulator()
    acc.add_records(trials, [], locations)
    atlas = Atlas.from_accumulator(acc, weights={"a": 0.25, "b": 0.75})
    rows = {row["loc"]: row for row in atlas.site_rows()}
    # W_a * c/n = 0.25 * 1/2 for each outcome at loc 5.
    assert rows["f/entry/0"]["weighted"]["SDC"] == pytest.approx(0.125)
    assert rows["f/entry/0"]["weighted"]["unACE"] == pytest.approx(0.125)
    assert rows["f/entry/1"]["weighted"]["unACE"] == pytest.approx(0.75)
    assert rows["f/entry/0"]["failure_share"] == pytest.approx(0.125)
    # Self-weighting (no weights) reduces to sampled shares: 1/N each.
    unweighted = Atlas.from_accumulator(acc)
    rows = {row["loc"]: row for row in unweighted.site_rows()}
    assert rows["f/entry/0"]["weighted"]["SDC"] == pytest.approx(0.25)


def test_pseudo_location_buckets():
    acc = AtlasAccumulator()
    trials = [
        {"kind": "trial", "trial": 0, "dynamic_index": 999,
         "outcome": "unACE", "fault_landed": False},
        {"kind": "trial", "trial": 1, "dynamic_index": 123,
         "outcome": "unACE", "fault_landed": True},
    ]
    acc.add_records(trials, [], {})
    assert acc.never_landed == 1
    assert set(acc.counts) == {NEVER_LANDED_LOC, UNMAPPED_LOC}
    atlas = Atlas.from_accumulator(acc)
    # Pseudo-locations never rank as escapes and sort after real locs.
    assert atlas.top_escapes() == []
    text = atlas.render()
    assert NEVER_LANDED_LOC in text
    assert UNMAPPED_LOC in text


def test_render_with_and_without_program(binary):
    acc, _, _ = _build_atlas(binary)
    atlas = Atlas.from_accumulator(acc)
    flat = atlas.render()
    assert "Reliability map:" in flat
    annotated = atlas.render(program=binary)
    assert "per-instruction outcomes" in annotated
    # The heatmap replaces the flat site table.
    assert "Reliability map:" not in annotated
    assert "trials anchored to" in annotated


def test_atlas_from_records_roundtrips_export(binary):
    log = CampaignLog(context={"technique": "swiftr", "seed": SEED})
    acc = AtlasAccumulator()
    run_campaign(binary, trials=TRIALS, seed=SEED, log=log, taint=True,
                 atlas=acc)
    direct = Atlas.from_accumulator(acc, context={"via": "inline"})
    records = log.to_dicts() + log.taint_dicts()
    rebuilt = atlas_from_records(records, Machine(binary),
                                 context={"via": "inline"})
    assert rebuilt.to_json() == direct.to_json()
