"""The benchmark suite: compilation, determinism, and characteristics."""

import pytest

from repro.isa import Opcode, OpKind, verify_program
from repro.sim import RunStatus, run_program
from repro.transform import allocate_program
from repro.workloads import (
    MICRO_BENCHMARKS,
    PAPER_BENCHMARKS,
    WORKLOADS,
    build,
    get_workload,
)

#: Golden outputs, pinned: any change to workloads or compiler that
#: alters program behaviour must be deliberate and update these.
GOLDEN_OUTPUTS = {
    "adpcmdec": [752865, 127],
    "adpcmenc": [77045],
    "mpeg2dec": [1022835],
    "mpeg2enc": [624293],
    "equake": [646451],
    "mcf": [4, 299852, 12816],
    "parser": [25, 40979, 15],
    "vortex": [118, 18, 166, 241006],
    "twolf": [5128, 4513, 19, 4513],
    "art": [36, 802190],
    "crc32": [1016090, 3470],
    "bitcount": [1546],
    "matmul": [151365, -9231],
    "sort": [919957, 163, 9927],
    "dijkstra": [40, 1026289, 82],
    "fft": [970880, 94864],
}


def test_registry_contents():
    from repro.workloads import EXTRA_BENCHMARKS

    assert set(PAPER_BENCHMARKS) <= set(WORKLOADS)
    assert set(MICRO_BENCHMARKS) <= set(WORKLOADS)
    assert set(EXTRA_BENCHMARKS) <= set(WORKLOADS)
    assert len(PAPER_BENCHMARKS) == 10
    assert not set(PAPER_BENCHMARKS) & set(MICRO_BENCHMARKS)
    assert not set(EXTRA_BENCHMARKS) & set(PAPER_BENCHMARKS)


def test_unknown_workload():
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError, match="unknown"):
        get_workload("nonesuch")


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_builds_and_verifies(name):
    program = build(name)
    verify_program(program)
    assert program.entry == "main"


@pytest.mark.parametrize("name", sorted(GOLDEN_OUTPUTS))
def test_workload_golden_output(name):
    result = run_program(allocate_program(build(name)))
    assert result.status is RunStatus.EXITED
    assert result.exit_code == 0
    assert result.output == GOLDEN_OUTPUTS[name]


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_size_budget(name):
    """Workloads stay campaign-sized: big enough to be interesting,
    small enough that 250-trial campaigns finish."""
    result = run_program(allocate_program(build(name)))
    assert 5_000 < result.instructions < 200_000


def test_metadata_present():
    for workload in WORKLOADS.values():
        assert workload.paper_analogue
        assert workload.description


def _mix(name):
    """Dynamic opcode-kind mix of a workload (NOFT)."""
    from repro.sim import Machine, TimingSimulator

    program = allocate_program(build(name))
    machine = Machine(program)
    counts: dict[OpKind, int] = {}
    # Static mix over the hot functions is a cheap, adequate proxy.
    for fn in program:
        for instr in fn.instructions():
            counts[instr.op.kind] = counts.get(instr.op.kind, 0) + 1
    total = sum(counts.values())
    return {kind: c / total for kind, c in counts.items()}


def test_parser_is_logical_heavy_and_matmul_arith_heavy():
    parser_mix = _mix("parser")
    matmul_mix = _mix("matmul")
    logical_parser = parser_mix.get(OpKind.LOGICAL, 0) \
        + parser_mix.get(OpKind.SHIFT, 0)
    logical_matmul = matmul_mix.get(OpKind.LOGICAL, 0) \
        + matmul_mix.get(OpKind.SHIFT, 0)
    assert logical_parser > logical_matmul


def test_art_is_fp_dominated():
    art_mix = _mix("art")
    fp = art_mix.get(OpKind.FP, 0) + art_mix.get(OpKind.FMEM, 0)
    assert fp > 0.15
    for other in ("mcf", "parser", "vortex"):
        other_mix = _mix(other)
        assert fp > other_mix.get(OpKind.FP, 0) + other_mix.get(OpKind.FMEM, 0)


def test_trump_coverage_tracks_benchmark_character():
    """TRUMP covers far more of mpeg2enc (constant-multiply DCT chains)
    than of crc32 (purely logical chains) -- the mechanism behind the
    paper's equake/mpeg2enc-vs-parser contrast (Section 7.1)."""
    from repro.transform import coverage_report

    def coverage(name):
        program = build(name)
        covered = 0
        total = 0
        for fn in program:
            report = coverage_report(fn)
            covered += report["an_definitions"]
            total += report["definitions"]
        return covered / total

    assert coverage("mpeg2enc") > coverage("crc32") + 0.3
