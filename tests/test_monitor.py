"""Campaign monitoring: heartbeats, aggregation, obs top rendering."""

import io
import json

from repro.faults import run_parallel_campaign
from repro.obs.monitor import (
    CampaignMonitor,
    HeartbeatWriter,
    aggregate_shards,
    follow_path,
    read_heartbeats,
    render_top,
)
from repro.stats import AdaptiveConfig, run_adaptive_campaign


def test_heartbeat_roundtrip(tmp_path):
    path = str(tmp_path / "hb.jsonl")
    writer = HeartbeatWriter(path, role="shard", shard=3, total=40,
                             every=16)
    for done in range(1, 41):
        writer.tick(done)
    records = read_heartbeats(path)
    # First, every 16th after it, and the final one.
    assert [r["completed"] for r in records] == [1, 17, 33, 40]
    assert all(r["kind"] == "heartbeat" for r in records)
    assert all(r["role"] == "shard" for r in records)
    assert all(r["shard"] == 3 for r in records)
    assert records[-1]["total"] == 40
    assert "trials_per_sec" in records[-1]


def test_heartbeat_gzip_append_members(tmp_path):
    # Each append is its own gzip member; the reader sees one stream.
    path = str(tmp_path / "hb.jsonl.gz")
    writer = HeartbeatWriter(path, every=1)
    writer.emit(1)
    writer.emit(2)
    records = read_heartbeats(path)
    assert [r["completed"] for r in records] == [1, 2]


def test_read_heartbeats_tolerates_partial_line(tmp_path):
    path = tmp_path / "hb.jsonl"
    good = json.dumps({"kind": "heartbeat", "completed": 5})
    path.write_text(good + "\n" + '{"kind": "heartb')
    records = read_heartbeats(str(path))
    assert len(records) == 1
    assert records[0]["completed"] == 5
    assert read_heartbeats(str(tmp_path / "missing.jsonl")) == []


def test_aggregate_shards_and_stragglers():
    records = [
        {"kind": "heartbeat", "role": "shard", "shard": 0,
         "completed": 20, "total": 20, "trials_per_sec": 10.0},
        {"kind": "heartbeat", "role": "shard", "shard": 1,
         "completed": 18, "total": 20, "trials_per_sec": 9.0},
        {"kind": "heartbeat", "role": "shard", "shard": 2,
         "completed": 2, "total": 20, "trials_per_sec": 1.0},
    ]
    summary = aggregate_shards(records)
    assert summary["shards"] == 3
    assert summary["done_shards"] == 1
    assert summary["completed"] == 40
    assert summary["total"] == 60
    assert summary["stragglers"] == [2]
    # Later heartbeats supersede earlier ones for the same shard.
    records.append({"kind": "heartbeat", "role": "shard", "shard": 2,
                    "completed": 19, "total": 20, "trials_per_sec": 8.0})
    assert aggregate_shards(records)["stragglers"] == []


def test_stale_shards_flagged_dead():
    now = 1_000_000.0
    records = [
        {"kind": "heartbeat", "role": "shard", "shard": 0,
         "completed": 30, "total": 60, "trials_per_sec": 10.0,
         "ts": now - 5},
        {"kind": "heartbeat", "role": "shard", "shard": 1,
         "completed": 28, "total": 60, "trials_per_sec": 9.0,
         "ts": now - 300},
        {"kind": "heartbeat", "role": "shard", "shard": 2,
         "completed": 60, "total": 60, "trials_per_sec": 12.0,
         "ts": now - 300},
    ]
    summary = aggregate_shards(records, stale_after=60, now=now)
    # Shard 1 went silent mid-run; shard 2's last beat is naturally its
    # final one (finished shards are exempt).
    assert summary["stale"] == [1]
    assert summary["done_shards"] == 1
    # A dead worker's frozen rate no longer inflates the aggregate.
    assert summary["trials_per_sec"] == 22.0
    # Stale members are not additionally flagged as stragglers.
    assert 1 not in summary["stragglers"]
    report = render_top(records, stale_after=60, now=now)
    assert "1 member(s) DEAD: no beat in 60s" in report
    assert "DEAD" in report
    # Without the threshold nobody is stale.
    fresh = aggregate_shards(records, stale_after=None, now=now)
    assert fresh["stale"] == []
    assert "DEAD" not in render_top(records, now=now)


def test_stale_campaign_heartbeat_flagged_dead():
    now = 1_000_000.0
    records = [{"kind": "heartbeat", "role": "campaign", "completed": 40,
                "total": 60, "trials_per_sec": 8.0, "ts": now - 120}]
    report = render_top(records, stale_after=60, now=now)
    assert "(DEAD: no beat in 60s)" in report
    # A finished campaign is never dead, however old its last beat.
    records[0]["final"] = True
    assert "DEAD" not in render_top(records, stale_after=60, now=now)


def test_render_top_sections():
    records = [
        {"kind": "heartbeat", "role": "campaign", "completed": 60,
         "total": 60, "trials_per_sec": 12.5, "final": True},
        {"kind": "heartbeat", "role": "shard", "shard": 0,
         "completed": 30, "total": 30, "trials_per_sec": 6.0},
        {"kind": "heartbeat", "role": "adaptive", "batch": 0,
         "completed": 96, "total": 4000, "estimate": 0.99,
         "half_width": 0.02, "target": 0.06, "met": True},
        {"kind": "trial", "outcome": "unACE"},
        {"kind": "trial", "outcome": "SDC"},
    ]
    report = render_top(records)
    assert "campaign: 60/60 trials" in report
    assert "(finished)" in report
    assert "Shards: 1/1 done" in report
    assert "Adaptive convergence" in report
    assert "trial records so far: 2" in report
    assert render_top([]) == "(no heartbeat or trial records yet)"


def test_campaign_monitor_writes_and_renders(tmp_path):
    path = str(tmp_path / "hb.jsonl")
    stream = io.StringIO()
    monitor = CampaignMonitor(heartbeat_path=path, every=4,
                              progress=True, stream=stream)
    monitor.begin(total=12)
    for done in range(1, 13):
        monitor.trial_done(done)
    monitor.finish()
    records = read_heartbeats(path)
    assert records[-1]["final"] is True
    assert records[-1]["completed"] == 12
    text = stream.getvalue()
    assert "trials 12/12" in text
    assert text.endswith("\n")


def test_parallel_campaign_emits_shard_heartbeats(simple_program,
                                                 tmp_path):
    path = str(tmp_path / "hb.jsonl")
    monitor = CampaignMonitor(heartbeat_path=path, every=4)
    result = run_parallel_campaign(simple_program, trials=24, seed=13,
                                   jobs=2, monitor=monitor)
    monitor.finish()
    assert result.trials == 24
    assert result.elapsed_seconds > 0
    assert result.trials_per_sec > 0
    records = read_heartbeats(path)
    roles = {r["role"] for r in records}
    assert "shard" in roles and "campaign" in roles
    shards = {r["shard"] for r in records if r["role"] == "shard"}
    assert shards == {0, 1}
    # Monitoring never perturbs results.
    bare = run_parallel_campaign(simple_program, trials=24, seed=13,
                                 jobs=2)
    assert result == bare


def test_adaptive_monitor_trajectory(simple_program, tmp_path):
    path = str(tmp_path / "hb.jsonl")
    monitor = CampaignMonitor(heartbeat_path=path, every=1)
    config = AdaptiveConfig(ci_width=0.08, max_trials=400)
    result = run_adaptive_campaign(simple_program, config=config, seed=5,
                                   monitor=monitor)
    records = [r for r in read_heartbeats(path) if r["role"] == "adaptive"]
    assert len(records) == len(result.batches)
    assert [r["batch"] for r in records] == list(range(len(records)))
    assert records[-1]["met"] == result.target_met
    assert result.result.elapsed_seconds > 0


def test_follow_path_once(tmp_path, capsys):
    path = str(tmp_path / "hb.jsonl")
    HeartbeatWriter(path, every=1).emit(3, 10)
    assert follow_path(path, interval=0.01, iterations=1) == 0
    out = capsys.readouterr().out
    assert "obs top @" in out
    assert follow_path(str(tmp_path / "nope.jsonl"), interval=0.01,
                       iterations=1) == 0
