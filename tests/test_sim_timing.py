"""The in-order superscalar timing model."""

import pytest

from repro.isa import Function, IRBuilder, Program
from repro.sim import (
    Machine,
    RunStatus,
    TimingConfig,
    TimingSimulator,
    measure_cycles,
)


def chain_program(dependent: bool, length: int = 60) -> Program:
    """Either one long dependence chain or many independent adds."""
    program = Program()
    fn = Function("main")
    program.add_function(fn)
    b = IRBuilder(fn)
    b.start_block("entry")
    if dependent:
        acc = b.li(0)
        for _ in range(length):
            acc = b.add(acc, 1, dest=acc)
        b.print_(acc)
    else:
        regs = [b.add(b.li(i), 1) for i in range(length // 2)]
        b.print_(regs[-1])
    b.ret()
    return program


def test_width_limits_independent_work():
    wide = measure_cycles(chain_program(dependent=False),
                          TimingConfig(width=4))
    narrow = measure_cycles(chain_program(dependent=False),
                            TimingConfig(width=1))
    # The li/add pairs are pairwise dependent, so width 4 sustains about
    # two instructions per cycle while width 1 issues exactly one.
    assert narrow.cycles >= wide.cycles * 1.8


def test_dependent_chain_defeats_width():
    wide = measure_cycles(chain_program(dependent=True),
                          TimingConfig(width=4))
    narrow = measure_cycles(chain_program(dependent=True),
                            TimingConfig(width=1))
    # A serial chain issues one per cycle regardless of width.
    assert wide.cycles >= 0.8 * narrow.cycles


def test_ipc_reported():
    result = measure_cycles(chain_program(dependent=False))
    assert result.ipc > 1.0
    result2 = measure_cycles(chain_program(dependent=True))
    assert result2.ipc <= result.ipc


def cache_program(stride_words: int, accesses: int = 128) -> Program:
    program = Program()
    program.add_global("arr", 2048)
    fn = Function("main")
    program.add_function(fn)
    b = IRBuilder(fn)
    b.start_block("entry")
    program.assign_addresses()
    base = b.li(program.address_of("arr"))
    i = b.li(0)
    total = b.li(0)
    b.jmp("loop")
    b.start_block("loop")
    offset = b.shl(i, 3)
    addr = b.add(base, offset)
    v = b.load(addr)
    b.add(total, v, dest=total)
    b.add(i, stride_words, dest=i)
    b.blt(i, stride_words * accesses, "loop")
    b.start_block("done")
    b.print_(total)
    b.ret()
    return program


def test_cache_hits_vs_misses():
    # Stride 1 word: 8 accesses per 64B line -> few misses.
    sequential = measure_cycles(cache_program(stride_words=1))
    # Stride 8 words = one line per access -> every access misses.
    strided = measure_cycles(cache_program(stride_words=8))
    assert sequential.loads == strided.loads
    assert strided.load_misses > sequential.load_misses * 4
    assert strided.cycles > sequential.cycles


def test_miss_penalty_configurable():
    cheap = measure_cycles(cache_program(8), TimingConfig(miss_penalty=2))
    dear = measure_cycles(cache_program(8), TimingConfig(miss_penalty=60))
    assert dear.cycles > cheap.cycles


def test_role_counts_accumulate(simple_program):
    from repro.transform import Technique, allocate_program, protect

    binary = allocate_program(protect(simple_program, Technique.SWIFTR))
    result = TimingSimulator(Machine(binary)).run()
    assert result.status is RunStatus.EXITED
    assert result.role_counts.get("orig", 0) > 0
    assert result.role_counts.get("dup", 0) > 0
    assert result.role_counts.get("dup2", 0) > 0
    assert result.role_counts.get("vote", 0) > 0
    assert sum(result.role_counts.values()) == result.instructions


def test_timing_matches_functional_execution(simple_program,
                                             simple_golden):
    machine = Machine(simple_program)
    result = TimingSimulator(machine).run()
    assert result.instructions == simple_golden.instructions
    assert machine.output == simple_golden.output


def test_taken_branch_penalty():
    loopy = cache_program(stride_words=1, accesses=64)
    cheap = measure_cycles(loopy, TimingConfig(taken_branch_penalty=0))
    dear = measure_cycles(loopy, TimingConfig(taken_branch_penalty=6))
    assert dear.cycles > cheap.cycles + 5 * 60
