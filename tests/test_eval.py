"""Evaluation harnesses and report rendering."""

import pytest

from repro.eval import (
    evaluate_performance,
    evaluate_reliability,
    render_figure8,
    render_figure9,
)
from repro.eval.report import (
    average,
    geomean,
    reduction_percent,
    render_stacked_bar,
    render_table,
)
from repro.transform import Technique

FAST = ["crc32", "matmul"]
TECHS = [Technique.NOFT, Technique.TRUMP, Technique.SWIFTR]


def test_render_table_alignment():
    table = render_table(["name", "value"],
                         [["a", "1.00"], ["longer", "2.50"]],
                         title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    assert lines[2].startswith("---")
    assert len(lines) == 5


def test_stacked_bar_width():
    bar = render_stacked_bar(50.0, 25.0, 25.0, width=20)
    assert len(bar) == 20
    assert bar.count("#") == 10


def test_aggregates():
    assert average([1.0, 3.0]) == 2.0
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert reduction_percent(10.0, 1.0) == pytest.approx(90.0)
    assert reduction_percent(0.0, 5.0) == 0.0


def test_reliability_harness_small():
    results = evaluate_reliability(benchmarks=FAST, techniques=TECHS,
                                   trials=40, seed=1)
    for bench in FAST:
        for tech in TECHS:
            cell = results.cell(bench, tech)
            assert cell.trials == 40
    assert results.mean_unace(Technique.SWIFTR) > \
        results.mean_unace(Technique.NOFT)
    assert 0 <= results.failure_reduction(Technique.SWIFTR) <= 100
    rendered = render_figure8(results)
    assert "unACE" in rendered and "Average" in rendered
    assert "SWIFT-R" in rendered


def test_performance_harness_small():
    results = evaluate_performance(benchmarks=FAST, techniques=TECHS)
    for bench in FAST:
        assert results.normalized(bench, Technique.NOFT) == 1.0
        assert results.normalized(bench, Technique.SWIFTR) > 1.0
    geo = results.geomean_normalized(Technique.SWIFTR)
    assert 1.0 < geo < 4.0
    rendered = render_figure9(results)
    assert "GeoMean" in rendered
    assert "Paper geomeans" in rendered


def test_cli_entry_points_run(capsys):
    from repro.eval import performance, reliability

    assert performance.main(["--benchmarks", "crc32"]) == 0
    captured = capsys.readouterr()
    assert "Figure 9" in captured.out
    assert reliability.main(["--benchmarks", "crc32", "--trials", "20"]) == 0
    captured = capsys.readouterr()
    assert "Figure 8" in captured.out
