"""The -O2-style scalar optimiser."""

import pytest
from hypothesis import given, settings, strategies as st

from irgen import random_program
from repro.isa import (
    Imm,
    Opcode,
    parse_program,
    print_function,
    verify_program,
)
from repro.sim import run_program
from repro.transform import (
    Technique,
    allocate_program,
    eliminate_dead_code,
    fold_constants,
    local_cse,
    optimize_program,
    propagate_copies,
    protect,
)


def opt(text):
    program = optimize_program(parse_program(text))
    verify_program(program)
    return program.function("main")


def ops_of(fn):
    return [i.op for i in fn.instructions()]


def test_constant_folding_chains():
    fn = opt("""
func main(0):
entry:
    li v0, 6
    li v1, 7
    mul v2, v0, v1
    add v3, v2, 0
    print v3
    ret
""")
    # Everything collapses: either a li 42 feeds print, or 42 is
    # propagated straight into the print operand.
    instrs = list(fn.instructions())
    assert Opcode.MUL not in ops_of(fn)
    assert Opcode.ADD not in ops_of(fn)
    assert any(Imm(42) in i.srcs for i in instrs)


@pytest.mark.parametrize("expr,expected", [
    ("div v2, v0, v1", 6),        # 13 / 2
    ("rem v2, v0, v1", 1),
    ("sra v2, v0, v1", 3),
    ("shr v2, v0, v1", 3),
    ("cmplt v2, v0, v1", 0),
])
def test_folding_semantics_match_machine(expr, expected):
    text = f"""
func main(0):
entry:
    li v0, 13
    li v1, 2
    {expr}
    print v2
    ret
"""
    unoptimised = run_program(parse_program(text))
    optimised = run_program(optimize_program(parse_program(text)))
    assert unoptimised.output == optimised.output == [expected]


def test_division_by_zero_not_folded_away():
    fn = opt("""
func main(0):
entry:
    li v0, 1
    li v1, 0
    div v2, v0, v1
    print v2
    ret
""")
    assert Opcode.DIV in ops_of(fn)   # the trap must survive


def test_identities():
    fn = opt("""
func main(0):
entry:
    li v9, 5
    add v0, v9, 0
    mul v1, v0, 1
    shl v2, v1, 0
    xor v3, v2, 0
    print v3
    ret
""")
    body_ops = ops_of(fn)
    assert Opcode.ADD not in body_ops
    assert Opcode.MUL not in body_ops
    assert Opcode.SHL not in body_ops
    assert Opcode.XOR not in body_ops


def test_copy_propagation_collapses_mov_chains():
    fn = opt("""
func main(0):
entry:
    li v0, 65536
    mov v1, v0
    mov v2, v1
    load v3, [v2 + 0]
    print v3
    ret
""")
    # Loads read through the propagated base; the mov chain dies.
    loads = [i for i in fn.instructions() if i.op is Opcode.LOAD]
    assert loads
    assert ops_of(fn).count(Opcode.MOV) == 0
    # A single constant materialisation remains for the base register.
    assert ops_of(fn).count(Opcode.LI) == 1


def test_width_asserting_movs_are_preserved():
    """(int) cast movs carry value_bits and must not be propagated away
    (they gate TRUMP applicability)."""
    fn = opt("""
func main(0):
entry:
    li v0, 65536
    load v1, [v0 + 0]
    mov v2, v1    ; bits=32
    add v3, v2, 1
    print v3
    ret
""")
    movs = [i for i in fn.instructions()
            if i.op is Opcode.MOV and i.value_bits == 32]
    assert movs, print_function(fn)


def test_cse_removes_repeated_address_arithmetic():
    fn = opt("""
func main(0):
entry:
    li v0, 65536
    li v1, 2
    shl v2, v1, 3
    add v3, v0, v2
    load v4, [v3 + 0]
    shl v5, v1, 3
    add v6, v0, v5
    store [v6 + 0], v4
    ret
""")
    # The second shl/add pair is redundant; constant folding may then
    # collapse the remaining chain entirely -- at most one of each
    # survives and the load/store still address the same cell.
    assert ops_of(fn).count(Opcode.SHL) <= 1
    assert ops_of(fn).count(Opcode.ADD) <= 1


def test_cse_respects_redefinition():
    program = parse_program("""
func main(0):
entry:
    li v0, 3
    add v1, v0, 4
    li v0, 10
    add v2, v0, 4
    print v1
    print v2
    ret
""")
    golden = run_program(program)
    optimised = optimize_program(program)
    assert run_program(optimised).output == golden.output == [7, 14]


def test_dce_removes_dead_pure_code_only():
    fn = opt("""
func main(0):
entry:
    li v0, 1
    add v1, v0, 2
    li v2, 9
    load v3, [v4 + 0]
    print v1
    ret
""")
    body_ops = ops_of(fn)
    assert Opcode.LOAD in body_ops     # may trap: kept
    # v2's li is dead and pure: gone.
    li_values = [i.srcs[0].signed for i in fn.instructions()
                 if i.op is Opcode.LI]
    assert 9 not in li_values


def test_stores_and_calls_never_removed():
    program = parse_program("""
func effect(0):
entry:
    ret

func main(0):
entry:
    li v0, 65536
    store [v0 + 0], 5
    call v1, effect()
    ret
""")
    program.add_global("g", 1)
    optimised = optimize_program(program)
    fn = optimised.function("main")
    assert Opcode.STORE in ops_of(fn)
    assert Opcode.CALL in ops_of(fn)


def test_single_pass_helpers_report_changes():
    program = parse_program("""
func main(0):
entry:
    li v0, 2
    li v1, 3
    add v2, v0, v1
    print v2
    ret
""")
    fn = program.function("main")
    assert propagate_copies(fn)      # constants flow into the add
    assert fold_constants(fn)        # which then folds
    assert eliminate_dead_code(fn)   # leaving the feeding lis dead
    assert local_cse(fn) in (True, False)
    verify_program(program)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_optimizer_preserves_semantics_random(seed):
    program = random_program(seed)
    golden = run_program(program)
    optimised = optimize_program(program)
    verify_program(optimised)
    result = run_program(optimised)
    assert result.output == golden.output
    # And it never *grows* the program.
    assert optimised.num_instructions() <= program.num_instructions()


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_optimize_then_protect_then_allocate_random(seed):
    program = random_program(seed, num_blocks=2, instrs_per_block=8)
    golden = run_program(program)
    binary = allocate_program(
        protect(optimize_program(program), Technique.SWIFTR)
    )
    assert run_program(binary).output == golden.output
