"""Mini-C parser: structure, precedence, and error reporting."""

import pytest

from repro.errors import ParseError
from repro.lang import parse
from repro.lang import cast as ast


def parse_expr(text):
    unit = parse("int main() { return " + text + "; }")
    stmt = unit.functions[0].body.statements[0]
    return stmt.value


def test_precedence_mul_over_add():
    expr = parse_expr("1 + 2 * 3")
    assert isinstance(expr, ast.Binary) and expr.op == "+"
    assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"


def test_precedence_shift_below_add():
    expr = parse_expr("1 << 2 + 3")
    assert expr.op == "<<"
    assert expr.right.op == "+"


def test_precedence_compare_below_shift():
    expr = parse_expr("1 << 2 < 3")
    assert expr.op == "<"
    assert expr.left.op == "<<"


def test_logical_layering():
    expr = parse_expr("a && b || c & d")
    assert expr.op == "||"
    assert expr.left.op == "&&"
    assert expr.right.op == "&"


def test_left_associativity():
    expr = parse_expr("10 - 4 - 3")
    assert expr.op == "-"
    assert isinstance(expr.left, ast.Binary) and expr.left.op == "-"
    assert expr.right.value == 3


def test_assignment_right_associative():
    unit = parse("int main() { int a; int b; a = b = 1; return a; }")
    assign = unit.functions[0].body.statements[2].expr
    assert isinstance(assign, ast.Assign)
    assert isinstance(assign.value, ast.Assign)


def test_ternary():
    expr = parse_expr("a ? b : c ? d : e")
    assert isinstance(expr, ast.Conditional)
    assert isinstance(expr.otherwise, ast.Conditional)


def test_unary_and_cast():
    expr = parse_expr("-(int)x")
    assert isinstance(expr, ast.Unary) and expr.op == "-"
    assert isinstance(expr.operand, ast.Cast)
    assert expr.operand.target == ast.INT


def test_index_and_call_postfix():
    expr = parse_expr("table[f(1, 2)]")
    assert isinstance(expr, ast.Index)
    assert isinstance(expr.index, ast.Call)
    assert expr.index.callee == "f"
    assert len(expr.index.args) == 2


def test_pointer_types_and_params():
    unit = parse("int sum(int *p, float f) { return 0; } int main(){return 0;}")
    params = unit.functions[0].params
    assert params[0].type.pointer
    assert params[1].type.is_float


def test_global_arrays_and_initializers():
    unit = parse("int t[3] = { 1, -2, 3 }; float f = 2.5; int main(){return 0;}")
    table = unit.globals[0]
    assert table.array_size == 3
    assert table.init == [1, -2, 3]
    assert unit.globals[1].init == [2.5]


def test_float_initializer_for_int_rejected():
    with pytest.raises(ParseError):
        parse("int x = 1.5; int main(){return 0;}")


def test_statements_all_forms():
    unit = parse("""
int main() {
    int x = 0;
    if (x) { x = 1; } else x = 2;
    while (x < 10) { x++; }
    do { x--; } while (x > 0);
    for (int i = 0; i < 4; i++) { if (i == 2) continue; if (i == 3) break; }
    return x;
}
""")
    body = unit.functions[0].body.statements
    assert isinstance(body[1], ast.If)
    assert isinstance(body[2], ast.While) and not body[2].is_do_while
    assert isinstance(body[3], ast.While) and body[3].is_do_while
    assert isinstance(body[4], ast.For)


def test_for_with_empty_clauses():
    unit = parse("int main() { for (;;) { break; } return 0; }")
    loop = unit.functions[0].body.statements[0]
    assert loop.init is None and loop.cond is None and loop.step is None


def test_missing_semicolon():
    with pytest.raises(ParseError, match="expected"):
        parse("int main() { int x = 1 return x; }")


def test_unterminated_block():
    with pytest.raises(ParseError, match="unterminated|expected"):
        parse("int main() { int x = 1;")


def test_compound_assignment_ops():
    for op in ("+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="):
        unit = parse(f"int main() {{ int a = 4; a {op} 2; return a; }}")
        assign = unit.functions[0].body.statements[1].expr
        assert assign.op == op
