"""CFG construction, orderings, dominators, and loops."""

from repro.analysis import CFG, DominatorTree, Loop, find_loops, loop_depths
from repro.isa import Function, IRBuilder


def diamond() -> Function:
    """entry -> (left | right) -> join."""
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    x = b.li(1)
    b.beq(x, 0, "right")
    b.start_block("left")
    b.jmp("join")
    b.start_block("right")
    b.jmp("join")
    b.start_block("join")
    b.ret()
    return fn


def loop_fn() -> Function:
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    i = b.li(0)
    b.jmp("head")
    b.start_block("head")
    b.add(i, 1, dest=i)
    b.blt(i, 10, "head")
    b.start_block("exit")
    b.ret()
    return fn


def test_diamond_successors():
    fn = diamond()
    cfg = CFG(fn)
    assert cfg.successors["entry"] == ["right", "left"]  # taken first
    assert cfg.successors["left"] == ["join"]
    assert cfg.successors["right"] == ["join"]
    assert cfg.successors["join"] == []
    assert sorted(cfg.predecessors["join"]) == ["left", "right"]


def test_reverse_postorder_entry_first():
    fn = diamond()
    rpo = CFG(fn).reverse_postorder()
    names = [blk.name for blk in rpo]
    assert names[0] == "entry"
    assert names[-1] == "join"
    assert set(names) == {"entry", "left", "right", "join"}


def test_unreachable_blocks_excluded():
    fn = diamond()
    dead = fn.add_block("dead")
    from repro.isa import Instruction, Opcode

    dead.append(Instruction(Opcode.RET))
    cfg = CFG(fn)
    assert "dead" not in cfg.reachable()


def test_loop_back_edge_successor():
    fn = loop_fn()
    cfg = CFG(fn)
    assert cfg.successors["head"] == ["head", "exit"]


def test_dominators_diamond():
    fn = diamond()
    dom = DominatorTree(fn)
    assert dom.idom["left"] == "entry"
    assert dom.idom["right"] == "entry"
    assert dom.idom["join"] == "entry"
    assert dom.dominates("entry", "join")
    assert not dom.dominates("left", "join")
    assert dom.dominates("join", "join")


def test_dominators_chain():
    fn = loop_fn()
    dom = DominatorTree(fn)
    assert dom.idom["head"] == "entry"
    assert dom.idom["exit"] == "head"
    assert dom.dominates("head", "exit")
    children = dom.children()
    assert "head" in children["entry"]


def test_find_loops_simple():
    fn = loop_fn()
    loops = find_loops(fn)
    assert len(loops) == 1
    loop = loops[0]
    assert loop.header == "head"
    assert loop.body == {"head"}
    assert loop.back_edges == ["head"]


def test_loop_depths_nested():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    i = b.li(0)
    b.jmp("outer")
    b.start_block("outer")
    j = b.li(0)
    b.jmp("inner")
    b.start_block("inner")
    b.add(j, 1, dest=j)
    b.blt(j, 4, "inner")
    b.start_block("latch")
    b.add(i, 1, dest=i)
    b.blt(i, 4, "outer")
    b.start_block("exit")
    b.ret()
    depths = loop_depths(fn)
    assert depths["entry"] == 0
    assert depths["outer"] == 1
    assert depths["inner"] == 2
    assert depths["latch"] == 1
    assert depths["exit"] == 0


def test_no_loops_in_diamond():
    assert find_loops(diamond()) == []
