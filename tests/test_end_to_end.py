"""The library's core guarantees, end to end.

Invariant 1 of DESIGN.md: every protection technique preserves
fault-free semantics on every workload.  Plus: the reliability ordering
of Figure 8 and the performance ordering of Figure 9 hold on fast
subsets.
"""

import pytest

from repro.eval import PipelineOptions, prepare, prepare_machine
from repro.faults import golden_run, run_campaign
from repro.isa import verify_program
from repro.sim import Machine, RunStatus, TimingSimulator, run_program
from repro.transform import PAPER_TECHNIQUES, Technique, allocate_program
from repro.workloads import MICRO_BENCHMARKS, build

ALL_TECHNIQUES = PAPER_TECHNIQUES + (Technique.SWIFT,)

# Micro workloads cover the behavioural extremes cheaply; two paper
# workloads keep the full pipeline honest.
SEMANTICS_SET = MICRO_BENCHMARKS + ("adpcmdec", "equake")


@pytest.mark.parametrize("name", SEMANTICS_SET)
@pytest.mark.parametrize("technique", ALL_TECHNIQUES)
def test_protection_preserves_semantics(name, technique):
    golden = run_program(allocate_program(build(name)))
    binary = prepare(name, technique)
    verify_program(binary, require_physical=True)
    result = run_program(binary)
    assert result.status is RunStatus.EXITED
    assert result.output == golden.output
    assert result.exit_code == golden.exit_code


@pytest.mark.parametrize("technique", ALL_TECHNIQUES)
def test_protected_binaries_are_larger(technique):
    if technique is Technique.NOFT:
        pytest.skip("baseline")
    base = prepare("matmul", Technique.NOFT).num_instructions()
    hardened = prepare("matmul", technique).num_instructions()
    if technique is Technique.MASK:
        assert hardened >= base
    else:
        assert hardened > base * 1.2


def test_reliability_ordering_on_trump_friendly_workload():
    """SWIFT-R >= TRUMP > NOFT in unACE, with real recoveries.

    Measured on mpeg2enc, whose constant-multiply DCT chains give TRUMP
    real coverage; on value-multiply kernels like matmul TRUMP's
    coverage is too thin for a reliable ordering (the paper makes the
    same point about benchmarks TRUMP cannot protect).
    """
    results = {}
    for technique in (Technique.NOFT, Technique.TRUMP, Technique.SWIFTR):
        machine = prepare_machine("mpeg2enc", technique)
        results[technique] = run_campaign(
            machine.program, trials=150, seed=99, machine=machine
        )
    assert results[Technique.SWIFTR].unace_percent >= \
        results[Technique.TRUMP].unace_percent - 2.0
    assert results[Technique.TRUMP].unace_percent > \
        results[Technique.NOFT].unace_percent
    assert results[Technique.SWIFTR].unace_percent > 95.0
    assert results[Technique.SWIFTR].recoveries > 0
    assert results[Technique.TRUMP].recoveries > 0
    assert results[Technique.NOFT].recoveries == 0


def test_swift_detects_rather_than_corrupts():
    machine = prepare_machine("sort", Technique.SWIFT)
    campaign = run_campaign(machine.program, trials=150, seed=5,
                            machine=machine)
    assert campaign.detected_percent > 0
    noft = run_campaign(prepare("sort", Technique.NOFT), trials=150, seed=5)
    assert campaign.sdc_percent + campaign.segv_percent < \
        noft.sdc_percent + noft.segv_percent


def test_performance_ordering_on_micro():
    cycles = {}
    for technique in (Technique.NOFT, Technique.MASK, Technique.TRUMP,
                      Technique.SWIFTR):
        machine = prepare_machine("matmul", technique)
        cycles[technique] = TimingSimulator(machine).run().cycles
    noft = cycles[Technique.NOFT]
    assert cycles[Technique.MASK] < noft * 1.15
    assert noft < cycles[Technique.TRUMP] < cycles[Technique.SWIFTR]
    assert cycles[Technique.SWIFTR] < noft * 3.0


def test_trump_cheaper_than_swiftr_on_arith_code():
    """The paper's headline cost contrast, on the TRUMP-friendly kernel."""
    trump = TimingSimulator(prepare_machine("matmul", Technique.TRUMP)).run()
    swiftr = TimingSimulator(
        prepare_machine("matmul", Technique.SWIFTR)
    ).run()
    assert trump.instructions < swiftr.instructions


def test_prepare_caches(simple_program):
    first = prepare("crc32", Technique.NOFT)
    second = prepare("crc32", Technique.NOFT)
    assert first is second
    machine1 = prepare_machine("crc32", Technique.NOFT)
    machine2 = prepare_machine("crc32", Technique.NOFT)
    assert machine1 is machine2


def test_pipeline_options_affect_build():
    from repro.transform import VoteStyle

    branching = prepare("sort", Technique.SWIFTR,
                        PipelineOptions(vote_style=VoteStyle.BRANCHING))
    branchfree = prepare("sort", Technique.SWIFTR,
                         PipelineOptions(vote_style=VoteStyle.BRANCHFREE))
    assert branching is not branchfree
    golden = run_program(allocate_program(build("sort")))
    assert run_program(branchfree).output == golden.output
