"""Checkpointed campaign execution: snapshot fidelity, convergence
fast-forward correctness, and never-landed accounting."""

import pytest

from repro.errors import SimulationError
from repro.faults import (
    CampaignResult,
    FaultSite,
    Outcome,
    build_checkpoints,
    classify,
    fault_landed,
    golden_run,
    run_campaign,
    run_with_fault,
    sample_sites,
)
from repro.lang import compile_source
from repro.obs.campaign_log import CampaignLog
from repro.sim import Machine, RunStatus
from repro.transform import Technique, allocate_program, protect

#: A float-register and memory-mutation workload: FP accumulation in
#: registers plus an in-place integer array reversal, SWIFT-R
#: protected so recovery blocks exercise the counters too.
FLOAT_MEM_SOURCE = r"""
int data[16];
float scale = 1.5;

int main() {
    float acc = 0.25;
    for (int i = 0; i < 16; i++) { data[i] = i * 7 + 3; }
    for (int pass = 0; pass < 6; pass++) {
        for (int i = 0; i < 8; i++) {
            int tmp = data[i];
            data[i] = data[15 - i];
            data[15 - i] = tmp;
        }
        acc = acc * scale + (float)data[pass];
        print(acc);
    }
    int total = 0;
    for (int i = 0; i < 16; i++) { total += data[i]; }
    print(total);
    return 0;
}
"""


def _protected(source: str, technique=Technique.SWIFTR):
    return allocate_program(protect(compile_source(source), technique))


def _results_identical(a, b):
    assert a.status is b.status
    assert a.output == b.output
    assert a.instructions == b.instructions
    assert a.exit_code == b.exit_code
    assert a.recoveries == b.recoveries
    assert a.first_recovery_icount == b.first_recovery_icount


# -------------------------------------------------------------- fidelity
def _assert_checkpoint_fidelity(program, interval):
    machine = Machine(program)
    uninterrupted = golden_run(machine)
    assert uninterrupted.status is RunStatus.EXITED
    store = build_checkpoints(machine, interval=interval)
    _results_identical(store.golden, uninterrupted)
    assert len(store.snapshots) >= 2
    for snap in store.snapshots:
        machine.restore(snap)
        resumed = machine.run(None)
        _results_identical(resumed, uninterrupted)


def test_checkpoint_fidelity_protected_workload():
    from repro.workloads import build

    program = allocate_program(protect(build("crc32"), Technique.SWIFTR))
    _assert_checkpoint_fidelity(program, interval=8192)


def test_checkpoint_fidelity_float_and_memory():
    _assert_checkpoint_fidelity(_protected(FLOAT_MEM_SOURCE), interval=64)


def test_auto_interval_caps_checkpoint_count():
    from repro.faults.injector import MAX_CHECKPOINTS

    machine = Machine(_protected(FLOAT_MEM_SOURCE))
    store = build_checkpoints(machine)          # auto interval
    assert len(store.snapshots) <= MAX_CHECKPOINTS + 1
    for i, snap in enumerate(store.snapshots):
        assert snap.icount == i * store.interval


# ------------------------------------------- checkpointed == full replay
@pytest.mark.parametrize("technique", [Technique.NOFT, Technique.SWIFTR])
def test_checkpointed_trials_match_full_replay(technique):
    program = _protected(FLOAT_MEM_SOURCE, technique)
    machine = Machine(program)
    golden = golden_run(machine)
    store = build_checkpoints(machine, interval=128)
    for site in sample_sites(3, golden.instructions, 80):
        checkpointed = store.run_with_fault(site)
        full = run_with_fault(machine, site)
        _results_identical(checkpointed, full)


def test_checkpointed_campaign_matches_serial(simple_program):
    log_serial, log_ckpt = CampaignLog(), CampaignLog()
    serial = run_campaign(simple_program, trials=60, seed=11,
                          log=log_serial, checkpoint_interval=0)
    ckpt = run_campaign(simple_program, trials=60, seed=11,
                        log=log_ckpt, checkpoint_interval=16)
    assert serial == ckpt
    assert log_serial.records == log_ckpt.records


def test_fast_forward_engages_on_protected_code():
    program = _protected(FLOAT_MEM_SOURCE)
    machine = Machine(program)
    golden = golden_run(machine)
    store = build_checkpoints(machine, interval=128)
    for site in sample_sites(1, golden.instructions, 60):
        store.run_with_fault(site)
    # SWIFT-R repairs most register flips, re-converging the faulty
    # state with the golden run; the splice shortcut must be live.
    assert store.fast_forwards > 0


# ----------------------------------------------------- never-landed audit
def test_never_landed_site_returns_clean_run(simple_program):
    machine = Machine(simple_program)
    golden = golden_run(machine)
    store = build_checkpoints(machine, interval=16)
    site = FaultSite(dynamic_index=golden.instructions + 50,
                     reg_index=5, bit=3)
    result = store.run_with_fault(site)
    _results_identical(result, golden)
    assert not fault_landed(site, result)
    landed_site = FaultSite(dynamic_index=2, reg_index=5, bit=3)
    assert fault_landed(landed_site, store.run_with_fault(landed_site))


def test_never_landed_is_counted(simple_program):
    machine = Machine(simple_program)
    golden = golden_run(machine)
    site = FaultSite(dynamic_index=golden.instructions + 9,
                     reg_index=7, bit=1)
    faulty = run_with_fault(machine, site)

    result = CampaignResult()
    result.record(Outcome.UNACE, recovered=False,
                  landed=fault_landed(site, faulty))
    assert result.never_landed == 1

    log = CampaignLog()
    log.record_trial(0, site, classify(golden, faulty), faulty)
    assert log.records[0].fault_landed is False
    assert log.records[0].to_dict()["fault_landed"] is False


def test_never_landed_merges():
    a = CampaignResult(trials=2, never_landed=1, golden_instructions=10)
    b = CampaignResult(trials=3, never_landed=2, golden_instructions=10)
    assert a.merged(b).never_landed == 3


def test_campaign_counts_all_faults_landed(simple_program):
    # Sites sampled against the golden run always land.
    result = run_campaign(simple_program, trials=50, seed=4)
    assert result.never_landed == 0
