"""Bench schema, baseline comparison, and the ``repro bench`` gate."""

import json

import pytest

from repro.__main__ import main
from repro.bench import (
    SCHEMA_VERSION,
    compare_baselines,
    environment_fingerprint,
    read_bench,
    regressions,
    render_comparison,
    write_bench,
)

CAMPAIGN_RECORDS = [
    {"kind": "campaign_bench", "mode": "serial", "trials": 60,
     "trials_per_sec": 25.0},
    {"kind": "campaign_bench", "mode": "checkpointed", "trials": 60,
     "trials_per_sec": 100.0},
    {"kind": "campaign_bench_summary", "checkpoint_speedup": 4.0,
     "profile_overhead": 1.5},
]


def test_write_read_roundtrip(tmp_path):
    path = str(tmp_path / "bench.jsonl")
    write_bench(path, "campaign_throughput", CAMPAIGN_RECORDS,
                seed=2006, trials=60)
    meta, body = read_bench(path)
    assert meta["kind"] == "bench_meta"
    assert meta["schema_version"] == SCHEMA_VERSION
    assert meta["bench"] == "campaign_throughput"
    assert meta["seed"] == 2006
    assert meta["trials"] == 60
    assert set(meta["environment"]) == set(environment_fingerprint())
    assert body == CAMPAIGN_RECORDS


def test_read_legacy_file_without_meta(tmp_path):
    path = tmp_path / "legacy.json"
    path.write_text("".join(json.dumps(r) + "\n"
                            for r in CAMPAIGN_RECORDS))
    meta, body = read_bench(str(path))
    assert meta is None
    assert body == CAMPAIGN_RECORDS


def test_compare_no_regression_when_equal():
    checks = compare_baselines(CAMPAIGN_RECORDS, CAMPAIGN_RECORDS,
                               tolerance=0.0)
    assert checks
    assert regressions(checks) == []


def test_compare_flags_lower_throughput():
    current = json.loads(json.dumps(CAMPAIGN_RECORDS))
    current[1]["trials_per_sec"] = 10.0       # checkpointed: 100 -> 10
    checks = compare_baselines(current, CAMPAIGN_RECORDS, tolerance=0.5)
    failed = regressions(checks)
    assert [c.key for c in failed] == ["checkpointed"]
    assert failed[0].metric == "trials_per_sec"
    assert failed[0].direction == "higher"
    report = render_comparison(checks, 0.5)
    assert "REGRESSED" in report
    assert "1 regression(s)" in report


def test_compare_lower_is_better_direction():
    # profile_overhead growing is a regression; shrinking is not.
    worse = json.loads(json.dumps(CAMPAIGN_RECORDS))
    worse[2]["profile_overhead"] = 4.0
    failed = regressions(compare_baselines(worse, CAMPAIGN_RECORDS,
                                           tolerance=0.5))
    assert [c.metric for c in failed] == ["profile_overhead"]
    better = json.loads(json.dumps(CAMPAIGN_RECORDS))
    better[2]["profile_overhead"] = 1.0
    assert regressions(compare_baselines(better, CAMPAIGN_RECORDS,
                                         tolerance=0.5)) == []


def test_compare_skips_metrics_missing_on_either_side():
    baseline = json.loads(json.dumps(CAMPAIGN_RECORDS))
    del baseline[2]["profile_overhead"]       # baseline predates metric
    checks = compare_baselines(CAMPAIGN_RECORDS, baseline, tolerance=0.0)
    assert all(c.metric != "profile_overhead" for c in checks)
    assert regressions(checks) == []
    # A mode present only in the baseline is skipped entirely.
    checks = compare_baselines(CAMPAIGN_RECORDS[:1] + CAMPAIGN_RECORDS[2:],
                               CAMPAIGN_RECORDS, tolerance=0.0)
    assert all(c.key != "checkpointed" for c in checks)


def test_tolerance_bounds():
    current = json.loads(json.dumps(CAMPAIGN_RECORDS))
    current[1]["trials_per_sec"] = 60.0       # 40% below baseline
    assert regressions(compare_baselines(current, CAMPAIGN_RECORDS,
                                         tolerance=0.5)) == []
    assert regressions(compare_baselines(current, CAMPAIGN_RECORDS,
                                         tolerance=0.3))


def _bench_files(tmp_path):
    baseline = str(tmp_path / "baseline.jsonl")
    write_bench(baseline, "campaign_throughput", CAMPAIGN_RECORDS,
                seed=2006)
    return baseline


def test_cli_gate_passes_on_identical_input(tmp_path):
    baseline = _bench_files(tmp_path)
    current = str(tmp_path / "current.jsonl")
    write_bench(current, "campaign_throughput", CAMPAIGN_RECORDS,
                seed=2006)
    assert main(["bench", "--check", "--input", current,
                 "--baseline", baseline]) == 0


def test_cli_gate_fails_on_regressed_input(tmp_path, capsys):
    baseline = _bench_files(tmp_path)
    regressed_records = json.loads(json.dumps(CAMPAIGN_RECORDS))
    regressed_records[1]["trials_per_sec"] = 1.0
    current = str(tmp_path / "regressed.jsonl")
    write_bench(current, "campaign_throughput", regressed_records,
                seed=2006)
    assert main(["bench", "--check", "--input", current,
                 "--baseline", baseline]) == 1
    captured = capsys.readouterr()
    assert "REGRESSED" in captured.out
    assert "bench gate FAILED" in captured.err


def test_cli_gate_reads_legacy_baseline(tmp_path):
    baseline = tmp_path / "legacy.json"
    baseline.write_text("".join(json.dumps(r) + "\n"
                                for r in CAMPAIGN_RECORDS))
    current = str(tmp_path / "current.jsonl")
    write_bench(current, "campaign_throughput", CAMPAIGN_RECORDS)
    assert main(["bench", "--check", "--input", current,
                 "--baseline", str(baseline)]) == 0


def test_cli_usage_errors(tmp_path):
    current = str(tmp_path / "current.jsonl")
    write_bench(current, "campaign_throughput", CAMPAIGN_RECORDS)
    missing = str(tmp_path / "missing.json")
    assert main(["bench", "--check", "--input", current,
                 "--baseline", missing]) == 2
    assert main(["bench", "--check", "--input",
                 str(tmp_path / "nope.jsonl")]) == 2


def test_cli_writes_versioned_output(tmp_path):
    source = str(tmp_path / "in.jsonl")
    write_bench(source, "campaign_throughput", CAMPAIGN_RECORDS)
    out = str(tmp_path / "out.jsonl")
    assert main(["bench", "--input", source, "--out", out]) == 0
    meta, body = read_bench(out)
    assert meta["schema_version"] == SCHEMA_VERSION
    assert body == CAMPAIGN_RECORDS


def test_committed_baselines_are_versioned_and_self_consistent():
    # The committed baselines gate CI; they must parse under the
    # versioned schema and pass their own gate at zero tolerance.
    for path in ("BENCH_campaign.json", "BENCH_adaptive.json"):
        meta, body = read_bench(path)
        assert meta is not None, path
        assert meta["schema_version"] == SCHEMA_VERSION
        checks = compare_baselines(body, body, tolerance=0.0)
        assert checks, path
        assert regressions(checks) == []


@pytest.mark.parametrize("suite", ["campaign", "adaptive", "all"])
def test_cli_suite_choices_parse(suite):
    from repro.__main__ import build_parser

    args = build_parser().parse_args(["bench", "--suite", suite])
    assert args.suite == suite
