"""Register allocation: correctness under pressure, spills, frames."""

import pytest
from hypothesis import given, settings, strategies as st

from irgen import random_program
from repro.errors import RegisterAllocationError
from repro.isa import (
    Function,
    IRBuilder,
    Opcode,
    Role,
    parse_program,
    verify_program,
)
from repro.sim import run_program
from repro.transform import (
    Technique,
    allocate_function,
    allocate_program,
    protect,
)
from repro.transform.regalloc import ALLOC_INT, FLOAT_SCRATCH, INT_SCRATCH


def test_scratch_and_pools_disjoint():
    assert not set(INT_SCRATCH) & set(ALLOC_INT)
    from repro.isa import SP

    assert SP not in ALLOC_INT
    assert SP not in INT_SCRATCH


def test_output_is_all_physical(simple_program):
    allocated = allocate_program(simple_program)
    verify_program(allocated, require_physical=True)


def test_semantics_preserved(simple_program, simple_golden):
    allocated = allocate_program(simple_program)
    assert run_program(allocated).output == simple_golden.output


def test_high_pressure_forces_spills():
    """60 simultaneously live values cannot fit in 28 registers."""
    fn = Function("main")
    b = IRBuilder(fn)
    b.start_block("entry")
    values = [b.li(i * 17 + 1) for i in range(60)]
    total = b.li(0)
    for v in values:
        b.add(total, v, dest=total)
    b.print_(total)
    b.ret()
    from repro.isa import Program

    program = Program()
    program.add_function(fn)
    golden = run_program(program)
    allocated = allocate_program(program)
    verify_program(allocated, require_physical=True)
    spills = [i for i in allocated.function("main").instructions()
              if i.role is Role.SPILL]
    assert spills, "expected spill code under extreme pressure"
    assert run_program(allocated).output == golden.output


def test_frame_prologue_epilogue(simple_program):
    allocated = allocate_program(simple_program)
    main = allocated.function("main")
    assert main.frame_words > 0
    first = main.entry.instructions[0]
    assert first.op is Opcode.SUB and first.role is Role.FRAME
    # Every return restores the stack pointer.
    for blk in main.blocks:
        term = blk.terminator
        if term is not None and term.op is Opcode.RET:
            adds = [i for i in blk.instructions
                    if i.op is Opcode.ADD and i.role is Role.FRAME]
            assert adds, "epilogue must restore SP before ret"


def test_callee_saves_are_restored():
    """A callee clobbering many registers must not disturb the caller."""
    program = parse_program("""
func noisy(0):
entry:
    li v0, 1
    li v1, 2
    li v2, 3
    li v3, 4
    li v4, 5
    li v5, 6
    li v6, 7
    li v7, 8
    add v8, v0, v7
    ret v8

func main(0):
entry:
    li v0, 100
    li v1, 200
    li v2, 300
    call v3, noisy()
    add v4, v0, v1
    add v5, v4, v2
    add v6, v5, v3
    print v6
    ret
""")
    golden_value = 100 + 200 + 300 + 9
    allocated = allocate_program(program)
    result = run_program(allocated)
    assert result.output == [golden_value]


def test_recursion_supported_after_allocation():
    program = parse_program("""
func fact(1):
entry:
    param v0, 0
    bge v0, 2, rec
base:
    li v1, 1
    ret v1
rec:
    sub v2, v0, 1
    call v3, fact(v2)
    mul v4, v0, v3
    ret v4

func main(0):
entry:
    li v0, 10
    call v1, fact(v0)
    print v1
    ret
""")
    allocated = allocate_program(program)
    assert run_program(allocated).output == [3628800]


def test_branch_targeted_entry_gets_preface():
    # v0 reads as zero on entry (registers are zero-initialised), so
    # this loop counts 1, 2, 3 -- but only if the prologue does NOT
    # re-execute when the branch jumps back to the entry label.
    program = parse_program("""
func main(0):
entry:
    add v0, v0, 1
    blt v0, 3, entry
done:
    print v0
    ret
""")
    allocated = allocate_program(program)
    result = run_program(allocated, max_instructions=100_000)
    assert result.status.value == "exited"
    assert result.output == [3]
    main = allocated.function("main")
    assert main.entry.instructions[-1].op is Opcode.JMP


def test_input_function_not_mutated(simple_program):
    before = simple_program.function("main").num_instructions()
    allocate_program(simple_program)
    after = simple_program.function("main").num_instructions()
    assert before == after


def test_physical_register_in_input_rejected():
    program = parse_program("""
func main(0):
entry:
    li r5, 1
    print r5
    ret
""")
    with pytest.raises(RegisterAllocationError, match="physical"):
        allocate_program(program)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_allocation_preserves_semantics_on_random_programs(seed):
    program = random_program(seed)
    golden = run_program(program)
    assert golden.status.value == "exited"
    allocated = allocate_program(program)
    verify_program(allocated, require_physical=True)
    result = run_program(allocated)
    assert result.output == golden.output


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_allocation_after_swiftr_on_random_programs(seed):
    """The allocator must survive tripled register pressure."""
    program = random_program(seed, num_blocks=3, instrs_per_block=8)
    golden = run_program(program)
    hardened = allocate_program(protect(program, Technique.SWIFTR))
    verify_program(hardened, require_physical=True)
    assert run_program(hardened).output == golden.output


def test_allocation_stats_reporting():
    from repro.transform import allocation_stats
    from repro.workloads import build

    hardened = allocate_program(protect(build("twolf"), Technique.SWIFTR))
    stats = allocation_stats(hardened)
    assert stats.frame_words > 0
    assert stats.saved_registers > 0
    assert "main" in stats.functions
    # Under tripled pressure the hot kernels must have spill sites.
    assert sum(stats.functions.values()) > 0
    assert stats.spill_slots > 0


def test_allocation_stats_on_spill_free_code():
    from repro.isa import parse_program
    from repro.transform import allocation_stats

    program = parse_program("""
func main(0):
entry:
    li v0, 1
    print v0
    ret
""")
    stats = allocation_stats(allocate_program(program))
    assert stats.spill_slots == 0
    assert stats.functions["main"] == 0
