"""Hybrids: TRUMP/SWIFT-R and TRUMP/MASK (paper Section 6)."""

from repro.isa import Opcode, Role, parse_program
from repro.sim import Machine, RunStatus, run_program
from repro.transform import (
    Form,
    Technique,
    allocate_program,
    apply_trump_mask,
    apply_trump_swiftr,
    count_masks,
    protect,
)
from repro.transform.trump import compute_an_candidates, trump_assignment
from repro.faults import FaultSite, golden_run, run_with_fault


def mixed_program():
    """A TRUMP-friendly arithmetic chain feeding a store, plus a
    TRUMP-hostile logical chain: the hybrid must protect both."""
    program = parse_program("""
func main(0):
entry:
    li v0, 65536
    load v1, [v0 + 0]    ; bits=32
    and v2, v1, 255
    add v3, v2, 7
    store [v0 + 8], v3
    xor v4, v1, 9
    print v4
    print v3
    ret
""")
    program.add_global("g", 2, [123])
    return program


def test_figure7_conversion_emitted():
    """SWIFT-R -> TRUMP transition: rt = 2*r' + r'' (shl + add)."""
    hardened = apply_trump_swiftr(mixed_program())
    fn = hardened.function("main")
    converts = [i for i in fn.instructions() if i.role is Role.CONVERT]
    assert len(converts) >= 2
    assert converts[0].op is Opcode.SHL
    assert converts[0].srcs[1].value == 1
    assert converts[1].op is Opcode.ADD


def test_hybrid_partition():
    program = mixed_program()
    fn = program.function("main")
    assignment = trump_assignment(fn, hybrid=True)
    from repro.isa import vreg

    # The logical results stay SWIFT-R; the add after the and is
    # AN-codable via conversion.
    assert assignment.form_of(vreg(2)) is Form.TMR
    assert assignment.form_of(vreg(4)) is Form.TMR
    assert assignment.form_of(vreg(3)) is Form.AN
    # Every integer register is protected by *something*.
    for instr in fn.instructions():
        for reg in instr.registers():
            if reg.is_virtual and reg.is_int:
                assert assignment.form_of(reg) is not Form.NONE


def test_hybrid_use_constraint():
    """A register consumed by a SWIFT-R computation must stay SWIFT-R
    (no TRUMP -> SWIFT-R conversion; paper Section 6.1)."""
    program = parse_program("""
func main(0):
entry:
    li v0, 3
    add v1, v0, 4
    xor v2, v1, 1
    print v2
    ret
""")
    fn = program.function("main")
    assignment = trump_assignment(fn, hybrid=True)
    from repro.isa import vreg

    # v1 feeds a logical (SWIFT-R form) op, so v1 must be TMR even
    # though it is arithmetic and bounded.
    assert assignment.form_of(vreg(1)) is Form.TMR


def test_hybrid_preserves_semantics_and_recovers():
    binary = allocate_program(
        protect(mixed_program(), Technique.TRUMP_SWIFTR)
    )
    machine = Machine(binary)
    golden = golden_run(machine)
    assert golden.status is RunStatus.EXITED
    assert golden.output == [114, 130]
    correct = 0
    trials = 0
    recovered = 0
    for dyn in range(1, golden.instructions - 1, 2):
        for reg in range(14, 32):
            result = run_with_fault(machine, FaultSite(dyn, reg, 17))
            trials += 1
            recovered += bool(result.recoveries)
            if (result.status is RunStatus.EXITED
                    and result.output == golden.output):
                correct += 1
    assert recovered > 0
    assert correct / trials > 0.9


def test_trump_mask_masks_only_uncovered_registers():
    program = mixed_program()
    fn = program.function("main")
    candidates = compute_an_candidates(fn)
    hardened = apply_trump_mask(program)
    # MASK instructions may exist, but never on AN-covered registers.
    for fn_out in hardened:
        for instr in fn_out.instructions():
            if instr.role is Role.MASK:
                assert instr.dest not in candidates


def test_trump_mask_preserves_semantics():
    program = mixed_program()
    golden = run_program(allocate_program(program))
    hardened = run_program(
        allocate_program(protect(program, Technique.TRUMP_MASK))
    )
    assert hardened.output == golden.output


def test_trump_mask_on_adpcm_keeps_masks():
    from repro.workloads import build

    hardened = protect(build("adpcmdec"), Technique.TRUMP_MASK)
    assert count_masks(hardened) >= 1
