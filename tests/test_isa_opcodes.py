"""Opcode metadata sanity."""

import pytest

from repro.isa import ANTransparency, Opcode, OpKind
from repro.isa.opcodes import MNEMONIC_TO_OPCODE, _OP_INFO


def test_every_opcode_has_info():
    for op in Opcode:
        info = op.info
        assert info.mnemonic
        assert info.latency >= 1


def test_mnemonics_unique_and_roundtrip():
    assert len(MNEMONIC_TO_OPCODE) == len(list(Opcode))
    for op in Opcode:
        assert MNEMONIC_TO_OPCODE[op.info.mnemonic] is op


@pytest.mark.parametrize("op", [Opcode.BEQ, Opcode.BNE, Opcode.BLT,
                                Opcode.BGE, Opcode.JMP, Opcode.RET,
                                Opcode.EXIT, Opcode.DETECT])
def test_terminators(op):
    assert op.info.is_terminator


@pytest.mark.parametrize("op", [Opcode.ADD, Opcode.LOAD, Opcode.STORE,
                                Opcode.CALL, Opcode.PRINT, Opcode.PARAM])
def test_non_terminators(op):
    assert not op.info.is_terminator


def test_an_transparency_full_set():
    full = {op for op in Opcode if op.info.an is ANTransparency.FULL}
    assert full == {Opcode.ADD, Opcode.SUB, Opcode.NEG, Opcode.MOV,
                    Opcode.LI}


def test_an_transparency_const_set():
    const = {op for op in Opcode if op.info.an is ANTransparency.CONST}
    assert const == {Opcode.MUL, Opcode.SHL}


def test_logical_ops_not_an_transparent():
    """Paper Section 4.3: AN-codes do not propagate through logical ops."""
    for op in (Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOT, Opcode.SHR,
               Opcode.SRA, Opcode.DIV, Opcode.REM, Opcode.CMPEQ):
        assert op.info.an is ANTransparency.NONE


def test_arity_metadata():
    assert Opcode.ADD.info.num_srcs == 2
    assert Opcode.STORE.info.num_srcs == 3
    assert Opcode.LOAD.info.num_srcs == 2
    assert Opcode.NEG.info.num_srcs == 1
    assert Opcode.JMP.info.num_srcs == 0
    assert Opcode.CALL.info.num_srcs == -1  # variadic
    assert Opcode.RET.info.num_srcs == -1


def test_memory_kinds():
    assert Opcode.LOAD.kind is OpKind.LOAD
    assert Opcode.STORE.kind is OpKind.STORE
    assert Opcode.FLOAD.info.touches_memory
    assert Opcode.FSTORE.info.touches_memory
    assert not Opcode.ADD.info.touches_memory


def test_commutativity_flags():
    assert Opcode.ADD.info.commutative
    assert Opcode.MUL.info.commutative
    assert not Opcode.SUB.info.commutative
    assert not Opcode.SHL.info.commutative


def test_latency_ordering():
    """Divide is slow, multiply medium, simple ALU fast."""
    assert Opcode.DIV.info.latency > Opcode.MUL.info.latency
    assert Opcode.MUL.info.latency > Opcode.ADD.info.latency
