"""Adaptive campaigns: fault-space stratification, sequential engine."""

import pytest

from repro.faults import (
    INJECTABLE_GPRS,
    Outcome,
    run_campaign,
    sample_sites,
)
from repro.obs.campaign_log import CampaignLog
from repro.sim import Machine
from repro.stats import (
    AdaptiveConfig,
    run_adaptive_campaign,
    run_adaptive_suite,
)
from repro.stats.space import profile_fault_space
from repro.transform import Technique, allocate_program, protect

import random


@pytest.fixture
def swiftr_binary(simple_program):
    return allocate_program(protect(simple_program, Technique.SWIFTR))


def _config(**overrides):
    base = dict(ci_width=0.08, confidence=0.95, metric="unace",
                batch_size=48, seed_trials=2, max_trials=600,
                profile_samples=8, phases=2)
    base.update(overrides)
    return AdaptiveConfig(**base)


# ------------------------------------------------------------- fault space
def test_fault_space_partitions_population(simple_program):
    machine = Machine(simple_program)
    space = profile_fault_space(machine, samples=8, phases=2)
    golden = space.golden_instructions
    assert space.population == golden * len(INJECTABLE_GPRS) * 64
    assert sum(s.sites for s in space.strata.values()) == space.population
    assert sum(space.weight(key) for key in space.strata) == \
        pytest.approx(1.0)


def test_fault_space_sample_lands_in_its_stratum(simple_program):
    machine = Machine(simple_program)
    space = profile_fault_space(machine, samples=8, phases=2)
    rng = random.Random(42)
    for key in space.strata:
        for site in space.sample(key, rng, 20):
            assert space.stratum_of(site) == key
            assert site.dynamic_index < space.golden_instructions
            assert site.reg_index in INJECTABLE_GPRS
            assert 0 <= site.bit < 64


def test_fault_space_rejects_empty_run(simple_program):
    machine = Machine(simple_program)
    with pytest.raises(ValueError):
        profile_fault_space(machine, 0)


# -------------------------------------------------------------- sequential
def test_adaptive_campaign_stops_at_target(swiftr_binary):
    result = run_adaptive_campaign(swiftr_binary, config=_config(), seed=5)
    assert result.target_met
    assert result.trials < result.config.max_trials
    assert result.trials == sum(b.trials for b in result.batches)
    assert result.batches[-1].met
    assert result.estimate.half_width <= result.config.ci_width
    # Every stratum was seeded before stopping was allowed.
    assert all(c.trials > 0 for c in result.cells.values())


def test_adaptive_campaign_deterministic(swiftr_binary):
    first = run_adaptive_campaign(swiftr_binary, config=_config(), seed=5)
    second = run_adaptive_campaign(swiftr_binary, config=_config(), seed=5)
    assert first.trials == second.trials
    assert str(first.estimate) == str(second.estimate)
    assert first.result.counts == second.result.counts
    shifted = run_adaptive_campaign(swiftr_binary, config=_config(), seed=6)
    # Different seed -> different realized sites (counts almost surely
    # differ; trial totals may coincide).
    assert (shifted.result.counts != first.result.counts
            or shifted.trials != first.trials)


def test_adaptive_jobs_invariance(swiftr_binary):
    log1, log2 = CampaignLog(), CampaignLog()
    serial = run_adaptive_campaign(swiftr_binary, config=_config(),
                                   seed=7, jobs=1, log=log1)
    sharded = run_adaptive_campaign(swiftr_binary, config=_config(),
                                    seed=7, jobs=2, log=log2)
    assert serial.trials == sharded.trials
    assert serial.result.counts == sharded.result.counts
    assert serial.result.recoveries == sharded.result.recoveries
    assert [r.to_dict() for r in log1.records] == \
        [r.to_dict() for r in log2.records]


def test_adaptive_cap_hit_with_unreachable_target(swiftr_binary):
    config = _config(ci_width=0.0001, max_trials=64)
    result = run_adaptive_campaign(swiftr_binary, config=config, seed=1)
    assert not result.target_met
    assert result.trials == 64


def test_adaptive_estimates_are_post_stratified(swiftr_binary):
    result = run_adaptive_campaign(swiftr_binary, config=_config(), seed=5)
    arm = result.arm_estimate("campaign", (Outcome.UNACE,))
    suite = result.suite_estimate((Outcome.UNACE,))
    # Single arm: per-arm and suite estimates coincide, and both equal
    # the engine's stopping estimate (metric is unACE).
    assert arm.value == pytest.approx(suite.value, abs=1e-12)
    assert arm.value == pytest.approx(result.estimate.value, abs=1e-12)
    # Per-stratum outcome counts account for every trial exactly once.
    strata = result.arm_strata["campaign"]
    assert sum(s.trials for s in strata) == result.trials
    assert sum(sum(s.outcomes.values()) for s in strata) == result.trials


def test_adaptive_batch_telemetry_shape(swiftr_binary):
    result = run_adaptive_campaign(swiftr_binary, config=_config(), seed=5)
    dicts = result.batch_dicts({"technique": "swiftr"})
    assert len(dicts) == len(result.batches)
    for record in dicts:
        assert record["kind"] == "adaptive_batch"
        assert record["technique"] == "swiftr"
        assert record["metric"] == "unace"
        assert 0.0 <= record["estimate"] <= 1.0
    assert dicts[-1]["met"] is True
    assert dicts[-1]["total_trials"] == result.trials


def test_adaptive_suite_two_arms(simple_program, swiftr_binary):
    machines = [("plain", Machine(simple_program)),
                ("swiftr", Machine(swiftr_binary))]
    result = run_adaptive_suite(machines, config=_config(ci_width=0.12),
                                seed=3)
    assert set(result.arm_results) == {"plain", "swiftr"}
    assert result.trials == sum(r.trials for r in
                                result.arm_results.values())
    with pytest.raises(ValueError):
        result.result  # ambiguous with two arms
    suite = result.suite_estimate((Outcome.UNACE,))
    arms = [result.arm_estimate(name, (Outcome.UNACE,))
            for name in ("plain", "swiftr")]
    # Equal-weight suite: the estimate is the mean of the arm values.
    assert suite.value == pytest.approx(sum(a.value for a in arms) / 2,
                                        abs=1e-12)


def test_adaptive_suite_requires_arms():
    with pytest.raises(ValueError):
        run_adaptive_suite([], config=_config())


def test_adaptive_config_validation():
    with pytest.raises(ValueError):
        AdaptiveConfig(ci_width=0.0)
    with pytest.raises(ValueError):
        AdaptiveConfig(metric="nonsense")
    with pytest.raises(ValueError):
        AdaptiveConfig(batch_size=0)


# ---------------------------------------------------- fixed-campaign seam
def test_run_campaign_sites_bit_identical(swiftr_binary):
    """Explicit site lists reproduce seeded sampling exactly -- the
    contract the adaptive engine relies on for jobs-invariance."""
    log_seeded, log_sites = CampaignLog(), CampaignLog()
    seeded = run_campaign(swiftr_binary, trials=40, seed=9, log=log_seeded)
    sites = sample_sites(9, seeded.golden_instructions, 40)
    explicit = run_campaign(swiftr_binary, sites=sites, log=log_sites)
    assert explicit.counts == seeded.counts
    assert explicit.recoveries == seeded.recoveries
    assert explicit.never_landed == seeded.never_landed
    assert [r.to_dict() for r in log_sites.records] == \
        [r.to_dict() for r in log_seeded.records]
