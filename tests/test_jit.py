"""Differential tests for the block-compiling JIT (repro.sim.jit).

The JIT's whole contract is *bit-identical outcomes*: a campaign with
``jit=True`` must produce exactly the RunResults, telemetry, and final
architectural states the interpreter produces, for golden runs and for
every injected trial -- including injections that pause execution in
the middle of a compiled block and snapshot/restore round trips that
re-enter one.  These tests fuzz that claim on random programs and pin
the specific side-exit mechanics with deterministic cases.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from irgen import random_program
from repro.faults import run_campaign
from repro.isa import Function, IRBuilder, Program
from repro.isa.program import HEAP_BASE
from repro.faults.injector import golden_run, run_with_fault
from repro.faults.model import FaultSite, sample_sites
from repro.faults.parallel import run_parallel_campaign
from repro.obs.campaign_log import CampaignLog
from repro.sim import Machine
from repro.sim.jit import attach_jit, jit_program_for
from repro.transform import Technique, allocate_program, protect


def _machine_pair(program, max_instructions=2_000_000):
    """A (jit, interpreter) machine pair over the same program."""
    jit_machine = Machine(program, max_instructions=max_instructions)
    attach_jit(jit_machine)
    ref_machine = Machine(program, max_instructions=max_instructions)
    return jit_machine, ref_machine


def _final_state(machine):
    """Everything architectural a run leaves behind (positions hold
    per-machine compiled-function objects, so compare by name)."""
    position = machine._position
    if position is not None:
        position = (position[0].name, position[1], position[2])
    return (
        machine.icount,
        list(machine.regs),
        list(machine.fregs),
        dict(machine.memory.cells),
        list(machine.output),
        list(machine.call_stack),
        list(machine.arg_stack),
        machine.recoveries,
        machine.first_recovery_icount,
        machine.exit_code,
        position,
    )


def _binaries(seed):
    """One random program as (virtual-register, protected-physical)."""
    program = random_program(seed, num_blocks=3, instrs_per_block=9)
    protected = allocate_program(protect(program, Technique.SWIFTR))
    return [program, protected]


# --------------------------------------------------------------- fuzz
@settings(max_examples=4, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_differential_fuzz_golden_and_faulty(seed):
    """Random programs + random fault plans: the JIT agrees with the
    interpreter on every RunResult field and every byte of final
    architectural state."""
    for binary in _binaries(seed):
        jit_machine, ref_machine = _machine_pair(binary)
        jit_golden = golden_run(jit_machine)
        ref_golden = golden_run(ref_machine)
        assert jit_golden == ref_golden, (seed, "golden")
        assert _final_state(jit_machine) == _final_state(ref_machine)

        sites = sample_sites(seed ^ 0xBEEF, ref_golden.instructions, 12)
        for site in sites:
            jit_faulty = run_with_fault(jit_machine, site)
            ref_faulty = run_with_fault(ref_machine, site)
            assert jit_faulty == ref_faulty, (seed, site)
            assert _final_state(jit_machine) == _final_state(ref_machine), (
                seed, site)


@settings(max_examples=3, deadline=None)
@given(seed=st.integers(min_value=0, max_value=100_000))
def test_differential_fuzz_campaign_telemetry(seed):
    """Whole campaigns agree trial for trial, including the telemetry
    records a CampaignLog captures (fault site, outcome, latency)."""
    binary = _binaries(seed)[1]
    logs = {}
    results = {}
    for jit in (True, False):
        log = CampaignLog()
        results[jit] = run_campaign(binary, trials=25, seed=seed,
                                    max_instructions=2_000_000,
                                    log=log, jit=jit)
        logs[jit] = log
    assert results[True] == results[False]
    assert logs[True].to_dicts() == logs[False].to_dicts()


def _load_program(address):
    """main: print(load(address)); ret -- one LOAD, nothing else."""
    program = Program()
    fn = Function("main")
    program.add_function(fn)
    builder = IRBuilder(fn)
    builder.start_block("entry")
    program.assign_addresses()
    base = builder.li(address)
    builder.print_(builder.load(base))
    builder.ret()
    fn.renumber_pool()
    return program


def test_load_miss_paths_match_interpreter():
    """Regression: the compiled LOAD's fast path subscripts ``cells``
    directly and only a miss runs the interpreter's full check.  Both
    miss flavours -- a mapped-but-never-written word (reads as zero)
    and an unmapped address (segfault) -- must behave identically to
    the interpreter.  (The miss handler once referenced a name absent
    from the generated code's emptied-builtins namespace, which no
    golden-path test could see.)"""
    for address in (HEAP_BASE,          # mapped, never stored: loads 0
                    HEAP_BASE - 8,      # unmapped: segfault trap
                    HEAP_BASE + 1):     # misaligned: segfault trap
        program = _load_program(address)
        jit_machine, ref_machine = _machine_pair(program)
        jit_result = golden_run(jit_machine)
        assert jit_result == golden_run(ref_machine), hex(address)
        assert _final_state(jit_machine) == _final_state(ref_machine)


# --------------------------------------- mid-block injection side exits
def test_mid_block_injection_every_icount():
    """Pausing a compiled block at *every* dynamic instruction of a
    prefix -- most of them mid-block -- leaves state bit-identical to
    the interpreter, at the pause and at the end of the faulty run."""
    binary = _binaries(11)[1]
    jit_machine, ref_machine = _machine_pair(binary)
    golden = golden_run(ref_machine)
    assert golden_run(jit_machine) == golden
    span = min(golden.instructions, 240)
    for icount in range(span):
        site = FaultSite(dynamic_index=icount,
                         reg_index=5 + (icount % 3) * 4,
                         bit=(icount * 7) % 64)
        for machine in (jit_machine, ref_machine):
            machine.reset()
            paused = machine.run(site.dynamic_index)
            assert paused.status.value == "paused"
        # The pause boundary itself is exact: same registers, memory,
        # and resume position whichever engine ran the prefix.
        assert _final_state(jit_machine) == _final_state(ref_machine), icount
        completions = []
        for machine in (jit_machine, ref_machine):
            machine.flip_register_bit(site.reg_index, site.bit)
            completions.append(machine.run(None))
        assert completions[0] == completions[1], icount
        assert _final_state(jit_machine) == _final_state(ref_machine), icount


# ------------------------------------------- snapshot/restore round trip
def test_snapshot_restore_round_trip_under_jit():
    """A snapshot taken mid-compiled-block replays identically."""
    binary = _binaries(23)[1]
    jit_machine, ref_machine = _machine_pair(binary)
    golden = golden_run(ref_machine)
    for pause_at in (17, 133, golden.instructions // 2):
        jit_machine.reset()
        assert jit_machine.run(pause_at).status.value == "paused"
        snap = jit_machine.snapshot()
        first = jit_machine.run(None)
        first_state = _final_state(jit_machine)
        jit_machine.restore(snap)
        assert jit_machine.state_matches(snap)
        second = jit_machine.run(None)
        assert first == second, pause_at
        assert first_state == _final_state(jit_machine), pause_at
        assert first.output == golden.output


def test_restore_clears_stale_jit_call_state():
    """Regression (snapshot/restore fix): pending call-transfer residue
    from an abandoned JIT run must not survive a restore.  Before the
    fix, a stale ``pending_callee`` could redirect the restored run's
    next call-shaped action into the wrong function."""
    binary = _binaries(31)[1]
    machine = Machine(binary, max_instructions=2_000_000)
    attach_jit(machine)
    machine.reset()
    assert machine.run(50).status.value == "paused"
    snap = machine.snapshot()
    reference = machine.run(None)
    # Abandon a run mid-flight, then poison the transient call-transfer
    # fields the way an interrupted dispatch iteration would leave them.
    machine.restore(snap)
    machine.pending_callee = next(iter(machine.functions.values()))
    machine.pending_dest = 3
    machine.pending_dest_float = True
    machine.restore(snap)
    assert machine.pending_callee is None
    assert machine.pending_dest == -1
    assert machine.pending_dest_float is False
    assert machine.run(None) == reference


# ------------------------------------------------------- campaign parity
def test_campaign_jobs_parity_with_jit():
    """jobs=2 with the JIT equals jobs=1 with the JIT equals the
    interpreter, record for record."""
    binary = _binaries(47)[1]
    outcomes = {}
    for label, kwargs in (
        ("jit-serial", dict(jobs=1, jit=True)),
        ("jit-jobs2", dict(jobs=2, jit=True)),
        ("interp", dict(jobs=1, jit=False)),
    ):
        log = CampaignLog()
        result = run_parallel_campaign(binary, trials=30, seed=47,
                                       max_instructions=2_000_000,
                                       log=log, **kwargs)
        outcomes[label] = (result, log.to_dicts())
    assert outcomes["jit-serial"] == outcomes["jit-jobs2"]
    assert outcomes["jit-serial"] == outcomes["interp"]


def test_campaign_restores_machine_jit_attachment():
    """Campaigns must leave a shared machine's ``jit`` attachment the
    way they found it (prepare_machine caches machines across calls)."""
    binary = _binaries(5)[0]
    machine = Machine(binary, max_instructions=2_000_000)
    assert machine.jit is None
    run_campaign(binary, trials=5, seed=1, machine=machine, jit=True)
    assert machine.jit is None
    compiled = attach_jit(machine)
    run_campaign(binary, trials=5, seed=1, machine=machine, jit=False)
    assert machine.jit is compiled


def test_jit_program_cached_per_program_identity():
    """Two machines over one program share one compiled JitProgram."""
    binary = _binaries(3)[0]
    a = Machine(binary, max_instructions=2_000_000)
    b = Machine(binary, max_instructions=2_000_000)
    assert jit_program_for(a) is jit_program_for(b)


# ----------------------------------------------------- zero-cost-when-off
class _ProbeMachine(Machine):
    """Counts how often the run loop consults the ``jit`` gate."""

    @property
    def jit(self):
        self.jit_reads = getattr(self, "jit_reads", 0) + 1
        return self._jit_value

    @jit.setter
    def jit(self, value):
        self._jit_value = value


def test_jit_gate_is_one_read_per_run():
    """With the JIT off, the feature's entire cost is one attribute
    check per ``run()`` invocation -- the same contract as the taint
    and profile gates."""
    binary = _binaries(9)[0]
    trials = 20
    machine = _ProbeMachine(binary, max_instructions=2_000_000)
    machine.jit_reads = 0
    result = run_campaign(binary, trials=trials, seed=13,
                          machine=machine, jit=False)
    assert result.trials == trials
    # A few run() calls per trial (golden, injection pause, resume,
    # checkpoint builds), each reading the gate exactly once -- versus
    # the hundreds of thousands of instructions the campaign executes.
    assert 0 < machine.jit_reads <= 8 * trials + 8


def test_run_result_equality_is_field_complete():
    """The differential assertions above lean on RunResult ``==``;
    make sure it is a field-by-field dataclass comparison, so a new
    result field cannot silently escape the equivalence claims."""
    assert dataclasses.is_dataclass(golden_run(
        Machine(_binaries(2)[0], max_instructions=2_000_000)))
