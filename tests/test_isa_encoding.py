"""Binary instruction encoding and decode-legality."""

import pytest
from hypothesis import given, settings, strategies as st

from irgen import random_program
from repro.isa import (
    IllegalEncoding,
    Imm,
    Instruction,
    Opcode,
    decode_instruction,
    encode_function,
    encode_instruction,
    gpr,
    roundtrip_function,
)
from repro.isa.encoding import EncodedFunction, OPCODE_LIST
from repro.transform import Technique, allocate_program, protect
from repro.workloads import build


def _enc():
    enc = EncodedFunction("test")
    enc.intern_target("entry")
    enc.intern_target("exit")
    return enc


CASES = [
    Instruction(Opcode.ADD, dest=gpr(3), srcs=(gpr(4), gpr(5))),
    Instruction(Opcode.ADD, dest=gpr(3), srcs=(gpr(4), Imm(-7))),
    Instruction(Opcode.MUL, dest=gpr(0), srcs=(Imm(3), Imm(4))),
    Instruction(Opcode.LI, dest=gpr(9), srcs=(Imm(1 << 62),)),
    Instruction(Opcode.LOAD, dest=gpr(2), srcs=(gpr(7), Imm(16))),
    Instruction(Opcode.STORE, srcs=(gpr(7), Imm(8), gpr(2))),
    Instruction(Opcode.BEQ, srcs=(gpr(1), gpr(2)), label="exit"),
    Instruction(Opcode.BNE, srcs=(gpr(1), Imm(0)), label="entry"),
    Instruction(Opcode.JMP, label="exit"),
    Instruction(Opcode.RET, srcs=(gpr(3),)),
    Instruction(Opcode.RET),
    Instruction(Opcode.PRINT, srcs=(gpr(0),)),
    Instruction(Opcode.NOP),
    Instruction(Opcode.DETECT),
    Instruction(Opcode.PARAM, dest=gpr(5), srcs=(Imm(1),)),
]


@pytest.mark.parametrize("instr", CASES, ids=lambda i: repr(i))
def test_encode_decode_roundtrip(instr):
    enc = _enc()
    word = encode_instruction(instr, enc)
    assert 0 <= word < (1 << 64)
    decoded = decode_instruction(word, enc)
    assert decoded == instr


def test_call_roundtrip():
    enc = _enc()
    instr = Instruction(Opcode.CALL, dest=gpr(3), callee="helper",
                        srcs=(gpr(4), Imm(10)))
    enc.intern_target("helper")
    decoded = decode_instruction(encode_instruction(instr, enc), enc)
    assert decoded == instr


def test_illegal_opcode_id():
    enc = _enc()
    word = encode_instruction(CASES[0], enc)
    bad = (word & ~0x3F) | 0x3F   # opcode 63 does not exist
    assert 63 >= len(OPCODE_LIST)
    with pytest.raises(IllegalEncoding):
        decode_instruction(bad, enc)


def test_illegal_missing_source():
    enc = _enc()
    word = encode_instruction(CASES[0], enc)       # add r3, r4, r5
    # Knock out src1 (bits 18-23 -> NONE) without setting its imm flag.
    bad = word | (0x3F << 18)
    with pytest.raises(IllegalEncoding):
        decode_instruction(bad, enc)


def test_illegal_pool_index():
    enc = _enc()
    word = encode_instruction(
        Instruction(Opcode.LI, dest=gpr(0), srcs=(Imm(5),)), enc)
    bad = word | (0x3FF << 33)   # imm0 index far past the pool
    with pytest.raises(IllegalEncoding):
        decode_instruction(bad, enc)


def test_stale_dest_bits_ignored():
    enc = _enc()
    word = encode_instruction(Instruction(Opcode.PRINT, srcs=(gpr(4),)), enc)
    # PRINT has no dest; force dest bits to r9 -- hardware ignores them.
    mutated = (word & ~(0x3F << 6)) | (9 << 6)
    decoded = decode_instruction(mutated, enc)
    assert decoded.dest is None


def test_virtual_registers_rejected():
    from repro.isa import vreg

    enc = _enc()
    with pytest.raises(Exception):
        encode_instruction(
            Instruction(Opcode.MOV, dest=vreg(0), srcs=(vreg(1),)), enc)


def test_function_roundtrip_on_protected_binary():
    binary = allocate_program(protect(build("crc32"), Technique.SWIFTR))
    for fn in binary:
        decoded = roundtrip_function(fn)
        assert decoded == list(fn.instructions())


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_function_roundtrip_random(seed):
    binary = allocate_program(random_program(seed, num_blocks=2,
                                             instrs_per_block=8))
    for fn in binary:
        assert roundtrip_function(fn) == list(fn.instructions())


@settings(max_examples=60, deadline=None)
@given(bit=st.integers(min_value=0, max_value=63),
       case=st.integers(min_value=0, max_value=len(CASES) - 1))
def test_every_single_bit_flip_is_handled(bit, case):
    """Any flipped encoding either decodes to a *legal* instruction or
    raises IllegalEncoding -- never crashes, never returns garbage."""
    enc = _enc()
    word = encode_instruction(CASES[case], enc)
    try:
        decoded = decode_instruction(word ^ (1 << bit), enc)
    except IllegalEncoding:
        return
    # Legal decodes must themselves re-encode cleanly.
    assert isinstance(decoded, Instruction)
    encode_instruction(decoded, enc)
