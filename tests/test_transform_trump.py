"""TRUMP: AN-codes, applicability analysis, and recovery (Section 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import (
    Imm,
    MASK64,
    Opcode,
    Role,
    parse_program,
    to_signed,
)
from repro.sim import Machine, RunStatus
from repro.transform import (
    ProtectionConfig,
    Technique,
    allocate_program,
    apply_trump,
    compute_an_candidates,
    coverage_report,
    protect,
)
from repro.faults import FaultSite, golden_run, run_with_fault


# ----------------------------------------------------------- AN-code algebra
@settings(max_examples=300, deadline=None)
@given(x=st.integers(min_value=-(1 << 61), max_value=(1 << 61) - 1),
       y=st.integers(min_value=-(1 << 61), max_value=(1 << 61) - 1))
def test_an_codes_are_arithmetic_codes(x, y):
    """(Ax) + (Ay) = A(x+y) and (Ax)*k = A(x*k), mod 2**64 (Eq. 1-2)."""
    a = 3
    assert (a * x + a * y) & MASK64 == (a * (x + y)) & MASK64
    for k in (0, 1, 2, 7, 100):
        assert (a * x * k) & MASK64 == (a * (x * k)) & MASK64


@pytest.mark.parametrize("bit", range(64))
def test_single_bit_flip_never_divisible_by_A(bit):
    """Section 4.1: C +- 2**k is never congruent to 0 mod A = 2**n - 1.

    Checked in the signed interpretation our recovery uses, for values
    within TRUMP's applicability bound.
    """
    for value in (0, 1, 5, -7, (1 << 40) + 3, -(1 << 40)):
        codeword = (3 * value) & MASK64
        corrupted = to_signed(codeword ^ (1 << bit))
        assert corrupted % 3 != 0 or corrupted == 3 * value


@settings(max_examples=300, deadline=None)
@given(value=st.integers(min_value=-(1 << 60), max_value=(1 << 60) - 1),
       bit=st.integers(min_value=0, max_value=63))
def test_divisibility_identifies_corrupted_copy(value, bit):
    """Figure 4's recovery rule, as implemented: a flipped codeword is
    indivisible by 3; a flipped original leaves the codeword divisible."""
    codeword = (3 * value) & MASK64
    # Corrupt the codeword: detection must identify it.
    bad_codeword = to_signed(codeword ^ (1 << bit))
    assert bad_codeword % 3 != 0
    # Intact codeword: dividing recovers the original value.
    assert to_signed(codeword) % 3 == 0
    assert to_signed(codeword) // 3 == value


# ------------------------------------------------------------- applicability
def test_logical_chain_not_protectable():
    program = parse_program("""
func main(0):
entry:
    li v0, 12
    xor v1, v0, 5
    and v2, v1, 255
    print v2
    ret
""")
    fn = program.function("main")
    candidates = compute_an_candidates(fn)
    from repro.isa import vreg

    assert vreg(0) in candidates       # plain constant chain
    assert vreg(1) not in candidates   # xor breaks the chain
    assert vreg(2) not in candidates


def test_unbounded_value_not_protectable():
    program = parse_program("""
func main(0):
entry:
    li v0, 65536
    load v1, [v0 + 0]
    add v2, v1, 1
    print v2
    ret
""")
    program.add_global("g", 1)
    fn = program.function("main")
    candidates = compute_an_candidates(fn)
    from repro.isa import vreg

    # v1 is an unannotated load: magnitude unknown, codeword may overflow.
    assert vreg(1) not in candidates
    assert vreg(2) not in candidates


def test_annotated_load_is_protectable():
    program = parse_program("""
func main(0):
entry:
    li v0, 65536
    load v1, [v0 + 0]    ; bits=32
    add v2, v1, 1
    print v2
    ret
""")
    program.add_global("g", 1)
    candidates = compute_an_candidates(program.function("main"))
    from repro.isa import vreg

    assert vreg(1) in candidates
    assert vreg(2) in candidates


def test_mul_of_two_registers_not_protectable():
    program = parse_program("""
func main(0):
entry:
    li v0, 10
    li v1, 20
    mul v2, v0, v1
    mul v3, v0, 7
    print v2
    print v3
    ret
""")
    candidates = compute_an_candidates(program.function("main"))
    from repro.isa import vreg

    assert vreg(2) not in candidates   # (Ax)(Ay) = A^2 xy
    assert vreg(3) in candidates       # times a constant is fine


def test_coverage_report_counts():
    program = parse_program("""
func main(0):
entry:
    li v0, 1
    add v1, v0, 2
    xor v2, v1, 3
    print v2
    ret
""")
    report = coverage_report(program.function("main"))
    assert report["registers"] == 3
    assert report["an_registers"] == 2
    assert report["definitions"] == 3
    assert report["an_definitions"] == 2


# ------------------------------------------------------------ transformation
def trump_program():
    program = parse_program("""
func main(0):
entry:
    li v4, 65536
    load v3, [v4 + 0]    ; bits=32
    add v1, v3, 5
    store [v4 + 8], v1
    print v1
    ret
""")
    program.add_global("g", 2, [37])
    return program


def test_figure5_shape():
    hardened = apply_trump(trump_program())
    fn = hardened.function("main")
    instrs = list(fn.instructions())
    # The load result is AN-encoded by shift-and-subtract (A*r).
    load_pos = next(i for i, ins in enumerate(instrs)
                    if ins.op is Opcode.LOAD)
    assert instrs[load_pos + 1].op is Opcode.SHL
    assert instrs[load_pos + 1].role is Role.COPY
    assert instrs[load_pos + 2].op is Opcode.SUB
    # The add has an AN companion with the immediate scaled by 3.
    adds = [i for i in instrs
            if i.op is Opcode.ADD and i.role is Role.REDUNDANT]
    assert len(adds) == 1
    assert adds[0].srcs[1] == Imm(15)
    # Recovery code exists in cold blocks.
    assert any(i.role is Role.RECOVERY for i in instrs)
    assert any(i.op is Opcode.DIV for i in instrs)
    assert any(i.op is Opcode.REM for i in instrs)


def test_li_companion_scaled():
    hardened = apply_trump(trump_program())
    fn = hardened.function("main")
    lis = [i for i in fn.instructions()
           if i.op is Opcode.LI and i.role is Role.REDUNDANT]
    assert lis and lis[0].srcs[0].value == 3 * 65536


def test_trump_recovers_corrupted_original_and_shadow():
    binary = allocate_program(protect(trump_program(), Technique.TRUMP))
    machine = Machine(binary)
    golden = golden_run(machine)
    assert golden.status is RunStatus.EXITED
    recovered = 0
    correct = 0
    trials = 0
    for dyn in range(1, golden.instructions - 1):
        for reg in range(16, 32):
            site = FaultSite(dynamic_index=dyn, reg_index=reg, bit=21)
            result = run_with_fault(machine, site)
            trials += 1
            if result.recoveries:
                recovered += 1
            if (result.status is RunStatus.EXITED
                    and result.output == golden.output):
                correct += 1
    assert recovered > 0
    assert correct / trials > 0.9


def test_trump_with_larger_A():
    """A = 7 (n = 3) also detects and recovers."""
    config = ProtectionConfig(an_power=3)
    binary = allocate_program(
        protect(trump_program(), Technique.TRUMP, config)
    )
    machine = Machine(binary)
    golden = golden_run(machine)
    assert golden.status is RunStatus.EXITED
    assert golden.output == [42]


def test_trump_preserves_semantics_with_negative_values():
    program = parse_program("""
func main(0):
entry:
    li v0, -1000
    add v1, v0, -234
    sub v2, v1, 766
    neg v3, v2
    print v3
    ret
""")
    hardened = allocate_program(protect(program, Technique.TRUMP))
    from repro.sim import run_program

    assert run_program(hardened).output == [2000]
