"""Register interning, classes, pools."""

import copy

import pytest

from repro.isa import (
    NUM_GPRS,
    Register,
    RegisterPool,
    SP,
    allocatable_fprs,
    allocatable_gprs,
    fpr,
    fvreg,
    gpr,
    parse_register,
    vreg,
)


def test_interning_identity():
    assert gpr(3) is gpr(3)
    assert vreg(7) is vreg(7)
    assert fpr(2) is fpr(2)
    assert fvreg(9) is fvreg(9)


def test_distinct_classes_distinct_objects():
    assert gpr(3) is not vreg(3)
    assert gpr(3) is not fpr(3)
    assert vreg(3) is not fvreg(3)


def test_names():
    assert gpr(5).name == "r5"
    assert vreg(12).name == "v12"
    assert fpr(0).name == "f0"
    assert fvreg(4).name == "fv4"


def test_class_predicates():
    assert gpr(0).is_int and gpr(0).is_physical
    assert vreg(0).is_int and vreg(0).is_virtual
    assert fpr(0).is_float and fpr(0).is_physical
    assert fvreg(0).is_float and fvreg(0).is_virtual


def test_stack_pointer():
    assert SP is gpr(1)
    assert SP.is_stack_pointer
    assert not gpr(2).is_stack_pointer
    assert not vreg(1).is_stack_pointer


def test_physical_range_checked():
    with pytest.raises(ValueError):
        gpr(NUM_GPRS)
    with pytest.raises(ValueError):
        fpr(-1)


def test_parse_register():
    assert parse_register("r31") is gpr(31)
    assert parse_register("v100") is vreg(100)
    assert parse_register("f7") is fpr(7)
    assert parse_register("fv3") is fvreg(3)
    with pytest.raises(ValueError):
        parse_register("x5")


def test_deepcopy_preserves_interning():
    reg = vreg(5)
    assert copy.deepcopy(reg) is reg
    assert copy.copy(reg) is reg


def test_pool_fresh_registers():
    pool = RegisterPool()
    a = pool.new_int()
    b = pool.new_int()
    f = pool.new_float()
    assert a is not b
    assert a.is_int and f.is_float
    assert pool.num_int == 2
    assert pool.num_float == 1


def test_pool_new_like():
    pool = RegisterPool()
    assert pool.new_like(vreg(0)).is_int
    assert pool.new_like(fvreg(0)).is_float


def test_pool_reservation():
    pool = RegisterPool()
    pool.reserve_at_least(10, 5)
    assert pool.new_int().index == 10
    assert pool.new_float().index == 5
    # Reserving less never moves backwards.
    pool.reserve_at_least(2, 1)
    assert pool.new_int().index == 11


def test_allocatable_pools_exclude_sp():
    assert SP not in allocatable_gprs()
    assert len(allocatable_gprs()) == NUM_GPRS - 1
    assert len(allocatable_fprs()) == 32
