"""List scheduling: dependence preservation and check placement."""

from hypothesis import given, settings, strategies as st

from irgen import random_program
from repro.isa import Function, IRBuilder, Opcode, Role, verify_program
from repro.sim import run_program
from repro.transform import (
    SchedulePolicy,
    Technique,
    allocate_program,
    protect,
    schedule_block,
    schedule_function,
    schedule_program,
)


def test_terminator_stays_last(simple_program):
    scheduled = schedule_program(simple_program)
    verify_program(scheduled)
    for fn in scheduled:
        for blk in fn.blocks:
            assert blk.terminator is not None


def test_dependences_respected_simple():
    fn = Function("f")
    b = IRBuilder(fn)
    b.start_block("entry")
    x = b.li(2)
    y = b.mul(x, 10)       # latency 3: scheduler may hoist independents
    z = b.li(5)
    w = b.add(y, z)        # must stay after both
    b.print_(w)
    b.ret()
    schedule_block(fn.entry)
    order = [i.op for i in fn.entry.instructions]
    instrs = fn.entry.instructions
    pos = {id(i): k for k, i in enumerate(instrs)}
    defs = {}
    for instr in instrs:
        for reg in instr.source_registers():
            assert id(defs[reg]) in pos and pos[id(defs[reg])] < pos[id(instr)]
        if instr.dest is not None:
            defs[instr.dest] = instr
    assert order[-1] is Opcode.RET


def test_memory_order_preserved(simple_program, simple_golden):
    scheduled = schedule_program(simple_program)
    assert run_program(scheduled).output == simple_golden.output


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_scheduling_preserves_semantics_random(seed):
    program = random_program(seed)
    golden = run_program(program)
    scheduled = schedule_program(program)
    verify_program(scheduled)
    assert run_program(scheduled).output == golden.output


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_scheduling_protected_code_random(seed):
    """Scheduling after SWIFT-R must not break votes or checks."""
    program = random_program(seed, num_blocks=2, instrs_per_block=8)
    golden = run_program(program)
    hardened = schedule_program(protect(program, Technique.SWIFTR))
    binary = allocate_program(hardened)
    assert run_program(binary).output == golden.output


def test_checks_late_keeps_validation_adjacent():
    """CHECKS_LATE keeps each vote/check no further from its guarded
    memory instruction than the ILP policy does."""
    program = random_program(3, num_blocks=2, instrs_per_block=10)
    hardened = protect(program, Technique.SWIFTR)

    def mean_check_distance(prog):
        total = 0.0
        count = 0
        for fn in prog:
            for blk in fn.blocks:
                instrs = blk.instructions
                guarded = [k for k, i in enumerate(instrs)
                           if i.reads_memory or i.writes_memory]
                for k, instr in enumerate(instrs):
                    if instr.role is Role.VOTE and instr.is_branch:
                        later = [g for g in guarded if g > k]
                        if later:
                            total += later[0] - k
                            count += 1
        return total / count if count else 0.0

    ilp = schedule_program(hardened, SchedulePolicy.ILP)
    late = schedule_program(hardened, SchedulePolicy.CHECKS_LATE)
    assert mean_check_distance(late) <= mean_check_distance(ilp) + 1e-9


def test_schedule_function_returns_new_object(simple_program):
    fn = simple_program.function("main")
    scheduled = schedule_function(fn)
    assert scheduled is not fn
    assert fn.num_instructions() == scheduled.num_instructions()
