"""Convergence audit: coverage flags, efficiency, timelines."""

import json

import pytest

from repro.obs.convergence import convergence_tables
from repro.obs.emit import FORMATS, Table, emit_tables


def _stratum(arm, stratum, weight, trials, outcomes=None):
    return {"kind": "fault_space_stratum", "benchmark": "demo",
            "technique": "swiftr", "arm": arm, "stratum": stratum,
            "weight": weight, "trials": trials,
            "outcomes": outcomes or {}}


def _batch(batch, trials, total, half_width, met, **extra):
    record = {"kind": "adaptive_batch", "benchmark": "demo",
              "technique": "swiftr", "batch": batch, "trials": trials,
              "total_trials": total, "allocation": {"a": trials},
              "metric": "unace", "target": 0.025, "confidence": 0.95,
              "estimate": 0.9, "low": 0.85, "high": 0.95,
              "half_width": half_width, "met": met}
    record.update(extra)
    return record


def test_coverage_flags_unsampled_and_undersampled():
    records = [
        _stratum("swiftr", "hot", 0.5, 48, {"unACE": 40, "SDC": 8}),
        _stratum("swiftr", "cold", 0.4, 10, {"unACE": 10}),   # < half
        _stratum("swiftr", "never", 0.1, 0),
    ]
    tables = convergence_tables(records)
    assert len(tables) == 1
    table = tables[0]
    assert "Stratum coverage" in table.title
    flags = {row[1]: row[-1] for row in table.rows}
    assert flags["hot"] == ""
    assert flags["cold"] == "UNDERSAMPLED"
    assert flags["never"] == "UNSAMPLED"
    assert any("2 stratum/strata flagged" in note for note in table.notes)


def test_efficiency_note_realized_vs_neyman():
    # Two strata, equal weight, same variance, proportional split:
    # that IS the Neyman split, so efficiency is exactly 1.0.
    records = [
        _stratum("a1", "s1", 0.5, 50, {"unACE": 25, "SDC": 25}),
        _stratum("a1", "s2", 0.5, 50, {"unACE": 25, "SDC": 25}),
    ]
    table = convergence_tables(records)[0]
    note = next(n for n in table.notes if "Neyman" in n)
    assert "efficiency 1.00" in note
    assert "100 trials" in note


def test_efficiency_note_zero_variance():
    records = [_stratum("a1", "s1", 1.0, 30, {"unACE": 30})]
    table = convergence_tables(records)[0]
    assert any("allocation efficiency undefined" in n
               for n in table.notes)


def test_timeline_rows_and_stopping_note():
    records = [
        _batch(0, 96, 96, 0.08, False),
        _batch(1, 64, 160, 0.024, True),
    ]
    tables = convergence_tables(records)
    table = tables[0]
    assert "CI half-width timeline" in table.title
    assert "at 95%" in table.title
    assert [row[0] for row in table.rows] == [0, 1]
    assert table.rows[1][6] == "met"
    # Shrink bar scales with half-width over target (0.08/0.025 ~ 3).
    assert table.rows[0][7] == "###"
    assert any("target met." in n for n in table.notes)


def test_population_only_records_not_auditable():
    records = [{"kind": "fault_space_stratum", "stratum": "s1",
                "weight": 1.0, "sites": 100, "population": 6400}]
    table = convergence_tables(records)[0]
    assert any("allocation not auditable" in n for n in table.notes)


def test_no_telemetry_fallback():
    tables = convergence_tables([{"kind": "trial", "outcome": "unACE"}])
    assert len(tables) == 1
    assert any("no adaptive telemetry" in n for n in tables[0].notes)


def test_groups_split_per_campaign_cell():
    records = [
        _batch(0, 96, 96, 0.01, True),
        dict(_batch(0, 96, 96, 0.05, False), technique="noft"),
    ]
    tables = convergence_tables(records)
    assert len(tables) == 2
    assert {t.title.split("(")[1].split(")")[0] for t in tables} \
        == {"demo/swiftr", "demo/noft"}


def test_emit_tables_json_roundtrip():
    records = [_stratum("a1", "s1", 1.0, 30, {"unACE": 30}),
               _batch(0, 96, 96, 0.02, True)]
    text = emit_tables(convergence_tables(records), "json",
                       kind="convergence", meta={"records": len(records)})
    document = json.loads(text)
    assert document["kind"] == "convergence"
    assert document["records"] == 2
    titles = [t["title"] for t in document["tables"]]
    assert any("Stratum coverage" in t for t in titles)
    assert any("timeline" in t for t in titles)
    # JSON cells keep native types; padded strings are stripped.
    coverage = document["tables"][0]
    assert isinstance(coverage["rows"][0][2], str)  # weight% formatted
    assert coverage["rows"][0][3] == 30             # trials stay int


def test_emit_tables_rejects_unknown_format():
    with pytest.raises(ValueError, match="unknown format"):
        emit_tables([Table(title="t", columns=[], rows=[])], "yaml")
    assert "text" in FORMATS and "json" in FORMATS


def test_one_shot_audit_matches_adaptive_result(simple_program):
    from repro.stats import AdaptiveConfig, run_adaptive_campaign
    from repro.transform import Technique, allocate_program, protect

    binary = allocate_program(protect(simple_program, Technique.SWIFTR))
    config = AdaptiveConfig(ci_width=0.06, max_trials=300)
    result = run_adaptive_campaign(binary, config=config, seed=0)
    context = {"benchmark": "simple", "technique": "swiftr"}
    records = (result.batch_dicts(context=context)
               + result.stratum_dicts(context=context))
    tables = convergence_tables(records)
    joined = "\n".join(t.title for t in tables)
    assert "Stratum coverage (simple/swiftr)" in joined
    assert "CI half-width timeline (simple/swiftr)" in joined
    coverage = next(t for t in tables if "coverage" in t.title)
    # Realized trials in the audit sum to the campaign's total.
    trials_col = coverage.columns.index("trials")
    assert sum(r[trials_col] for r in coverage.rows) \
        == result.result.trials
