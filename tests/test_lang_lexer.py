"""Mini-C lexer."""

import pytest

from repro.errors import ParseError
from repro.lang import TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


def test_keywords_vs_identifiers():
    tokens = tokenize("int intx for fortune")
    assert tokens[0].kind is TokenKind.KEYWORD
    assert tokens[1].kind is TokenKind.IDENT
    assert tokens[2].kind is TokenKind.KEYWORD
    assert tokens[3].kind is TokenKind.IDENT


def test_numbers():
    tokens = tokenize("42 0x1F 3.5 1e3 2.5e-2 0")
    assert [t.kind for t in tokens[:-1]] == [
        TokenKind.INT, TokenKind.INT, TokenKind.FLOAT, TokenKind.FLOAT,
        TokenKind.FLOAT, TokenKind.INT,
    ]
    assert tokens[0].int_value == 42
    assert tokens[1].int_value == 31
    assert tokens[2].float_value == 3.5
    assert tokens[3].float_value == 1000.0


def test_multichar_operators_maximal_munch():
    assert texts("a <<= b >> c >= d == e && f ++ --") == [
        "a", "<<=", "b", ">>", "c", ">=", "d", "==", "e", "&&", "f",
        "++", "--",
    ]


def test_comments_skipped():
    assert texts("a // line comment\n b /* block\n comment */ c") == \
        ["a", "b", "c"]


def test_line_numbers_track_newlines_and_block_comments():
    tokens = tokenize("a\nb /* x\ny */ c")
    assert tokens[0].line == 1
    assert tokens[1].line == 2
    assert tokens[2].line == 3


def test_unterminated_comment():
    with pytest.raises(ParseError, match="unterminated"):
        tokenize("a /* oops")


def test_unexpected_character():
    with pytest.raises(ParseError, match="unexpected"):
        tokenize("a @ b")


def test_eof_token_always_last():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF
