"""Call-graph analysis."""

from repro.analysis import CallGraph
from repro.isa import parse_program


def program():
    return parse_program("""
func leaf(0):
entry:
    ret

func mid(0):
entry:
    call leaf()
    ret

func selfrec(1):
entry:
    param v0, 0
    bge v0, 1, rec
base:
    ret v0
rec:
    sub v1, v0, 1
    call v2, selfrec(v1)
    ret v2

func dead(0):
entry:
    call leaf()
    ret

func main(0):
entry:
    call mid()
    li v0, 2
    call v1, selfrec(v0)
    ret
""")


def test_edges():
    cg = CallGraph(program())
    assert cg.callees["main"] == {"mid", "selfrec"}
    assert cg.callees["mid"] == {"leaf"}
    assert cg.callers["leaf"] == {"mid", "dead"}
    assert cg.callees["leaf"] == set()


def test_reachability_excludes_dead():
    cg = CallGraph(program())
    reachable = cg.reachable_from_entry()
    assert reachable == {"main", "mid", "leaf", "selfrec"}
    assert "dead" not in reachable


def test_recursion_detection():
    cg = CallGraph(program())
    assert cg.is_recursive("selfrec")
    assert not cg.is_recursive("mid")
    assert not cg.is_recursive("leaf")


def test_mutual_recursion():
    mutual = parse_program("""
func ping(1):
entry:
    param v0, 0
    bge v0, 1, go
base:
    ret v0
go:
    sub v1, v0, 1
    call v2, pong(v1)
    ret v2

func pong(1):
entry:
    param v0, 0
    call v1, ping(v0)
    ret v1

func main(0):
entry:
    li v0, 3
    call v1, ping(v0)
    print v1
    ret
""")
    cg = CallGraph(mutual)
    assert cg.is_recursive("ping")
    assert cg.is_recursive("pong")
    assert not cg.is_recursive("main")


def test_leaf_functions():
    cg = CallGraph(program())
    assert "leaf" in cg.leaf_functions()
    assert "main" not in cg.leaf_functions()
