"""Assembly printer/parser round-trips."""

import pytest

from hypothesis import given, settings, strategies as st

from irgen import random_program
from repro.errors import ParseError
from repro.isa import (
    Imm,
    Instruction,
    Opcode,
    Role,
    parse_instruction,
    parse_program,
    print_instruction,
    print_program,
    vreg,
)


CASES = [
    "add v2, v0, v1",
    "add v2, v0, -5",
    "li v0, -9223372036854775808",
    "mov v1, v0",
    "load v3, [v4 + 8]",
    "load v3, [v4 + -16]",
    "store [v4 + 0], v2",
    "store [v4 + 24], -1",
    "fload fv1, [v0 + 8]",
    "fstore [v0 + 8], fv1",
    "beq v0, v1, .L1",
    "bne v0, 0, loop",
    "blt v0, 63, loop",
    "bge v9, v8, done",
    "jmp exit",
    "call v3, foo(v1, v2)",
    "call bar()",
    "ret v0",
    "ret",
    "param v0, 0",
    "print v2",
    "fprint fv0",
    "exit 0",
    "detect",
    "nop",
    "fadd fv2, fv0, fv1",
    "cvtif fv0, v1",
    "cvtfi v1, fv0",
    "shl v1, v0, 3",
    "cmpltu v2, v0, v1",
]


@pytest.mark.parametrize("text", CASES)
def test_instruction_roundtrip(text):
    instr = parse_instruction(text)
    printed = print_instruction(instr)
    again = parse_instruction(printed)
    assert again == instr


def test_annotations_roundtrip():
    instr = parse_instruction("mov v1, v0    ; role=dup bits=32")
    assert instr.role is Role.REDUNDANT
    assert instr.value_bits == 32
    reparsed = parse_instruction(print_instruction(instr))
    assert reparsed.role is Role.REDUNDANT
    assert reparsed.value_bits == 32


def test_unknown_mnemonic():
    with pytest.raises(ParseError):
        parse_instruction("frobnicate v0, v1")


def test_unknown_role():
    with pytest.raises(ParseError):
        parse_instruction("nop ; role=banana")


def test_bad_memory_operand():
    with pytest.raises(ParseError):
        parse_instruction("load v0, v1")


def test_program_roundtrip_fixture(simple_program):
    text = print_program(simple_program)
    reparsed = parse_program(text)
    assert print_program(reparsed) == text


def test_program_roundtrip_negative_and_float_globals():
    text = "\n".join([
        "global counts[2] = -5, 12",
        "globalf weights[2] = 1.5, -0.25",
        "",
        "func main(0):",
        "entry:",
        "    ret",
        "",
    ])
    program = parse_program(text)
    assert program.globals["counts"].init == [-5, 12]
    assert program.globals["weights"].init == [1.5, -0.25]
    assert print_program(parse_program(print_program(program))) == \
        print_program(program)


def test_function_signature_roundtrip():
    text = "\n".join([
        "func mix(3) [ifi] -> float:",
        "entry:",
        "    param fv0, 1",
        "    ret fv0",
        "",
        "func main(0):",
        "entry:",
        "    ret",
    ])
    program = parse_program(text)
    fn = program.function("mix")
    assert fn.num_params == 3
    assert fn.returns_float
    assert fn.param_is_float == (False, True, False)
    assert print_program(parse_program(print_program(program))) == \
        print_program(program)


def test_label_outside_function():
    with pytest.raises(ParseError):
        parse_program("entry:\n    ret\n")


def test_instruction_outside_block():
    with pytest.raises(ParseError):
        parse_program("func main(0):\n    ret\n")


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_program_roundtrip(seed):
    """print -> parse -> print is a fixed point on generated programs."""
    program = random_program(seed, num_blocks=3, instrs_per_block=6)
    text = print_program(program)
    assert print_program(parse_program(text)) == text


def test_repr_uses_printer():
    instr = Instruction(Opcode.ADD, dest=vreg(1), srcs=(vreg(0), Imm(2)))
    assert repr(instr) == "add v1, v0, 2"
