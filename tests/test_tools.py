"""Developer tooling: tracer, profiler, CLI."""

import pytest

from repro.eval.profile import (
    overhead_by_function,
    profile_workload,
    render_profile,
)
from repro.sim import Machine, RunStatus
from repro.sim.trace import format_trace, trace_execution
from repro.transform import Technique, allocate_program
from repro.workloads import build
from repro.__main__ import main as cli_main


# ------------------------------------------------------------------- tracer
def test_trace_records_execution(simple_program, simple_golden):
    machine = Machine(simple_program)
    entries, result = trace_execution(machine, limit=10_000)
    assert result.output == simple_golden.output
    assert len(entries) == simple_golden.instructions
    assert entries[0].index == 0
    assert entries[0].function == "main"
    # Destination values are recorded.
    li_entries = [e for e in entries if e.text.startswith("li ")]
    assert li_entries and all(e.value is not None for e in li_entries)


def test_trace_limit_and_start(simple_program, simple_golden):
    machine = Machine(simple_program)
    entries, result = trace_execution(machine, limit=5, start=3)
    assert len(entries) == 5
    assert entries[0].index == 3
    # The run still completes after the trace window.
    assert result.output == simple_golden.output


def test_trace_formatting(simple_program):
    machine = Machine(simple_program)
    entries, _ = trace_execution(machine, limit=3)
    text = format_trace(entries)
    assert "main" in text and "<-" in text


def test_trace_workload_entry_fields():
    machine = Machine(allocate_program(build("crc32")))
    entries, result = trace_execution(machine, limit=200)
    assert len(entries) == 200
    assert [e.index for e in entries] == list(range(200))
    assert all(e.function and e.block and e.text for e in entries)
    # The trace window crosses a call boundary in crc32's setup.
    assert {e.function for e in entries} >= {"main", "build_table"}
    assert result.status is RunStatus.EXITED


def test_trace_protected_binary(simple_program, simple_golden):
    """Tracing uses only the machine's public surface, so it works on
    hardened binaries whose blocks include recovery entries."""
    from repro.transform import protect

    hardened = allocate_program(protect(simple_program, Technique.SWIFTR))
    machine = Machine(hardened)
    entries, result = trace_execution(machine, limit=100_000)
    assert result.output == simple_golden.output
    assert len(entries) == result.instructions
    assert len(entries) > simple_golden.instructions   # redundancy costs


# ----------------------------------------------------------------- profiler
def test_profile_attributes_cycles():
    profiles, result = profile_workload("vortex", Technique.NOFT)
    assert profiles
    total_share = sum(p.cycle_share for p in profiles)
    assert total_share == pytest.approx(1.0)
    attributed = sum(p.cycles for p in profiles)
    assert attributed == pytest.approx(result.cycles, rel=0.05)
    names = {p.name for p in profiles}
    assert "main" in names and "obj_lookup" in names


def test_profile_render():
    profiles, _ = profile_workload("crc32", Technique.NOFT)
    text = render_profile("crc32", Technique.NOFT, profiles)
    assert "crc32" in text and "cycles%" in text


def test_overhead_by_function():
    overheads = overhead_by_function("crc32", Technique.SWIFTR)
    assert overheads
    assert all(value > 0.8 for value in overheads.values())
    # The logical-heavy CRC loop in main pays for triplication.
    assert overheads["main"] > 1.1


def test_profile_hot_functions_pay_for_protection():
    """NOFT vs SWIFT-R: every hot function carries redundancy cost."""
    base, _ = profile_workload("matmul", Technique.NOFT)
    overheads = overhead_by_function("matmul", Technique.SWIFTR)
    hot = [p.name for p in base if p.cycle_share > 0.10]
    assert hot
    for name in hot:
        assert overheads[name] > 1.0


# ---------------------------------------------------------------------- CLI
def test_cli_run_and_campaign(tmp_path, capsys):
    source = tmp_path / "demo.c"
    source.write_text(
        "int main() { int t = 0; "
        "for (int i = 0; i < 6; i++) { t += i; } print(t); return 0; }"
    )
    assert cli_main(["run", str(source)]) == 0
    assert capsys.readouterr().out.strip() == "15"

    assert cli_main(["campaign", str(source), "-t", "swiftr",
                     "--trials", "30"]) == 0
    out = capsys.readouterr().out
    assert "unACE" in out and "SWIFT-R" in out


def test_cli_asm(tmp_path, capsys):
    source = tmp_path / "demo.c"
    source.write_text("int main() { print(7); return 0; }")
    assert cli_main(["asm", str(source), "-t", "swift"]) == 0
    out = capsys.readouterr().out
    assert "func main" in out
    assert "detect" in out    # SWIFT's faultDet block


def test_cli_workloads(capsys):
    assert cli_main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "adpcmdec" in out and "mcf" in out


def test_cli_profile(capsys):
    assert cli_main(["profile", "crc32"]) == 0
    out = capsys.readouterr().out
    assert "profile: crc32" in out


def test_cli_fig9_subset(capsys):
    assert cli_main(["fig9", "--benchmarks", "crc32"]) == 0
    assert "Figure 9" in capsys.readouterr().out


def test_cli_rejects_unknown_technique(tmp_path, capsys):
    source = tmp_path / "demo.c"
    source.write_text("int main() { return 0; }")
    with pytest.raises(SystemExit):
        cli_main(["run", str(source), "-t", "banana"])


def test_cli_run_propagates_exit_code(tmp_path):
    source = tmp_path / "demo.c"
    source.write_text("int main() { exit(4); return 0; }")
    assert cli_main(["run", str(source)]) == 4


# ------------------------------------------------- atlas / convergence CLI
SMOKE_SOURCE = (
    "int data[8] = { 3, 1, 4, 1, 5, 9, 2, 6 };\n"
    "int main() { int t = 0; "
    "for (int i = 0; i < 8; i++) { t += data[i] * (i + 1); } "
    "print(t); return 0; }"
)


def _smoke(tmp_path):
    source = tmp_path / "demo.c"
    source.write_text(SMOKE_SOURCE)
    return source


def test_cli_campaign_atlas_artifact_and_rerender(tmp_path, capsys):
    import json

    source = _smoke(tmp_path)
    atlas_path = tmp_path / "atlas.json"
    assert cli_main(["campaign", str(source), "-t", "swiftr",
                     "--trials", "40", "--taint",
                     "--atlas", str(atlas_path)]) == 0
    out = capsys.readouterr().out
    assert "trials anchored to" in out
    doc = json.loads(atlas_path.read_text())
    assert doc["kind"] == "atlas"
    assert doc["trials"] == 40
    assert doc["context"]["source"] == str(source)
    # Re-render the saved artifact: the heatmap is rebuilt by
    # recompiling the source recorded in the context.
    assert cli_main(["obs", "atlas", str(atlas_path)]) == 0
    rendered = capsys.readouterr().out
    assert "per-instruction outcomes" in rendered


def test_cli_obs_atlas_from_telemetry(tmp_path, capsys):
    import json

    source = _smoke(tmp_path)
    telemetry = tmp_path / "t.jsonl"
    assert cli_main(["campaign", str(source), "-t", "swiftr",
                     "--trials", "40", "--taint",
                     "--telemetry", str(telemetry)]) == 0
    capsys.readouterr()
    out_path = tmp_path / "atlas.json"
    escapes = tmp_path / "escapes.json"
    assert cli_main(["obs", "atlas", str(telemetry),
                     "-o", str(out_path),
                     "--escapes", str(escapes)]) == 0
    capsys.readouterr()
    doc = json.loads(out_path.read_text())
    assert doc["kind"] == "atlas" and doc["trials"] == 40
    feed = json.loads(escapes.read_text())
    assert feed["kind"] == "atlas_escapes"
    assert feed["schema_version"] == doc["schema_version"]


def test_cli_obs_atlas_one_shot_json(capsys):
    import json

    assert cli_main(["obs", "atlas", "--workload", "crc32",
                     "--trials", "20", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "atlas"
    assert doc["sites"]
    assert doc["context"]["benchmark"] == "crc32"


def test_cli_obs_convergence_path_and_json(tmp_path, capsys):
    import json

    source = _smoke(tmp_path)
    telemetry = tmp_path / "adaptive.jsonl"
    assert cli_main(["campaign", str(source), "-t", "swiftr",
                     "--adaptive", "--ci-width", "6",
                     "--telemetry", str(telemetry)]) == 0
    capsys.readouterr()
    assert cli_main(["obs", "convergence", str(telemetry)]) == 0
    out = capsys.readouterr().out
    assert "Stratum coverage" in out
    assert "CI half-width timeline" in out
    assert cli_main(["obs", "convergence", str(telemetry),
                     "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "convergence" and doc["tables"]


def test_cli_obs_summarize_and_hotspots_json(tmp_path, capsys):
    import json

    source = _smoke(tmp_path)
    telemetry = tmp_path / "t.jsonl"
    assert cli_main(["campaign", str(source), "-t", "swiftr",
                     "--trials", "30",
                     "--telemetry", str(telemetry)]) == 0
    capsys.readouterr()
    assert cli_main(["obs", "summarize", str(telemetry),
                     "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "telemetry_summary"
    assert any("Campaign outcomes" in t["title"] for t in doc["tables"])
    assert cli_main(["obs", "hotspots", "--workload", "crc32",
                     "-t", "swiftr", "--trials", "10",
                     "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["kind"] == "hotspots" and doc["tables"]


def test_cli_obs_top_stale_after(tmp_path, capsys):
    import json
    import time

    path = tmp_path / "hb.jsonl"
    beat = {"kind": "heartbeat", "role": "shard", "shard": 0,
            "completed": 10, "total": 60, "trials_per_sec": 5.0,
            "ts": time.time() - 300}
    path.write_text(json.dumps(beat) + "\n")
    # A generous threshold keeps the 5-minute-old beat alive...
    assert cli_main(["obs", "top", str(path), "--once",
                     "--stale-after", "600"]) == 0
    assert "DEAD" not in capsys.readouterr().out
    # ...but the default 60s threshold flags it.
    assert cli_main(["obs", "top", str(path), "--once"]) == 0
    out = capsys.readouterr().out
    assert "DEAD" in out
    assert "no beat in 60s" in out


def test_cli_campaign_zero_elapsed_reports_rate_na(tmp_path, capsys,
                                                   monkeypatch):
    import repro.faults as faults

    source = _smoke(tmp_path)
    real = faults.run_parallel_campaign

    def zero_clock(*args, **kwargs):
        result = real(*args, **kwargs)
        result.elapsed_seconds = 0.0
        return result

    monkeypatch.setattr(faults, "run_parallel_campaign", zero_clock)
    assert cli_main(["campaign", str(source), "-t", "swiftr",
                     "--trials", "10"]) == 0
    out = capsys.readouterr().out
    assert "rate n/a" in out
    assert "trials/s" not in out


def test_trials_per_sec_guarded_against_zero_elapsed():
    from repro.faults.campaign import CampaignResult

    result = CampaignResult(trials=10)
    assert result.elapsed_seconds == 0.0
    assert result.trials_per_sec == 0.0
    result.elapsed_seconds = 2.0
    assert result.trials_per_sec == 5.0
