"""Simulator profiler: determinism, shard parity, zero-cost-off gating."""

import pytest

from repro.faults import run_campaign, run_parallel_campaign
from repro.obs.campaign_log import CampaignLog
from repro.obs.profile import SimProfiler, render_hotspots
from repro.sim import Machine


def _snapshot(profiler):
    """The deterministic portion of a profiler's state (wall excluded)."""
    return (
        dict(profiler.index_counts),
        dict(profiler.block_ops),
        dict(profiler.exits),
        dict(profiler.recoveries),
        profiler.opcode_counts(),
        profiler.taint_trials,
    )


def test_profiled_campaign_matches_unprofiled(simple_program):
    baseline = run_campaign(simple_program, trials=24, seed=13)
    profiler = SimProfiler()
    profiled = run_campaign(simple_program, trials=24, seed=13,
                            profile=profiler)
    assert profiled == baseline
    assert profiler.total_instructions > 0


def test_same_seed_same_counts(simple_program):
    profilers = []
    for _ in range(2):
        profiler = SimProfiler()
        run_campaign(simple_program, trials=24, seed=13, profile=profiler)
        profilers.append(profiler)
    assert _snapshot(profilers[0]) == _snapshot(profilers[1])


def test_jobs2_merge_matches_serial_profile(simple_program):
    serial = SimProfiler()
    run_parallel_campaign(simple_program, trials=24, seed=13, jobs=1,
                          profile=serial)
    sharded = SimProfiler()
    run_parallel_campaign(simple_program, trials=24, seed=13, jobs=2,
                          profile=sharded)
    assert _snapshot(serial) == _snapshot(sharded)


def test_merge_is_associative(simple_program):
    parts = []
    for seed in (1, 2, 3):
        profiler = SimProfiler()
        run_campaign(simple_program, trials=8, seed=seed, profile=profiler)
        parts.append(profiler)
    left = SimProfiler()
    left.merge_from(parts[0])
    left.merge_from(parts[1])
    left.merge_from(parts[2])
    right = SimProfiler()
    tail = SimProfiler()
    tail.merge_from(parts[1])
    tail.merge_from(parts[2])
    right.merge_from(parts[0])
    right.merge_from(tail)
    assert _snapshot(left)[:5] == _snapshot(right)[:5]


def test_opcode_shares_sum_to_one(simple_program):
    profiler = SimProfiler()
    run_campaign(simple_program, trials=12, seed=7, profile=profiler)
    records = profiler.to_records()
    op_shares = [r["share"] for r in records
                 if r["kind"] == "opcode_profile"]
    assert op_shares
    assert sum(op_shares) == pytest.approx(1.0, abs=1e-6)
    block_shares = [r["share"] for r in records
                    if r["kind"] == "block_profile"]
    assert sum(block_shares) == pytest.approx(1.0, abs=1e-6)


def test_block_ops_parallel_to_counts(simple_program):
    profiler = SimProfiler()
    run_campaign(simple_program, trials=12, seed=7, profile=profiler)
    assert profiler.index_counts
    for key, counts in profiler.index_counts.items():
        ops = profiler.block_ops[key]
        assert len(ops) == len(counts)
        assert all(count >= 0 for count in counts)


def test_to_records_context_and_render(simple_program):
    profiler = SimProfiler()
    run_campaign(simple_program, trials=12, seed=7, profile=profiler)
    records = profiler.to_records(context={"benchmark": "simple"})
    assert all(r["benchmark"] == "simple" for r in records)
    report = render_hotspots(records, top=3)
    assert "JIT candidates" in report
    assert "shares sum to 1.0" in report
    assert render_hotspots([], top=3) == "(no profile records)"


def test_taint_trials_recorded(simple_program):
    profiler = SimProfiler()
    log = CampaignLog()
    run_campaign(simple_program, trials=10, seed=3, log=log, taint=True,
                 profile=profiler)
    assert profiler.taint_trials == 10


class _ProbeMachine(Machine):
    """Counts how often the run loop consults the ``profile`` gate."""

    @property
    def profile(self):
        self.profile_reads = getattr(self, "profile_reads", 0) + 1
        return self._profile_value

    @profile.setter
    def profile(self, value):
        self._profile_value = value


def test_profiler_off_is_one_check_per_run(simple_program):
    # The zero-cost-when-off contract: with no profiler attached, the
    # hot path consults ``machine.profile`` once per run() call -- not
    # once per instruction or per block.
    trials = 20
    machine = _ProbeMachine(simple_program, max_instructions=100_000)
    machine.profile_reads = 0
    result = run_campaign(simple_program, trials=trials, seed=13,
                          machine=machine)
    assert result.trials == trials
    # run() is invoked a handful of times per trial (golden run,
    # injection, resume); each invocation reads the gate exactly once.
    assert 0 < machine.profile_reads <= 8 * trials + 8
    # The same campaign executes orders of magnitude more instructions
    # than that: the gate is per-run, not per-instruction.
    reference = SimProfiler()
    run_campaign(simple_program, trials=trials, seed=13,
                 profile=reference)
    assert machine.profile_reads < reference.total_instructions / 10
