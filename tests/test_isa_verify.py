"""The IR verifier catches each class of malformed IR."""

import pytest

from repro.errors import VerificationError
from repro.isa import (
    Function,
    Imm,
    Instruction,
    Opcode,
    Program,
    fvreg,
    verify_function,
    verify_program,
    vreg,
)


def _fn_with(instrs, name="f") -> Function:
    fn = Function(name)
    blk = fn.add_block("entry")
    blk.extend(instrs)
    return fn


def test_missing_entry_function():
    program = Program()
    program.add_function(Function("helper"))
    program.functions["helper"].add_block("entry").append(
        Instruction(Opcode.RET)
    )
    with pytest.raises(VerificationError, match="entry"):
        verify_program(program)


def test_empty_function():
    with pytest.raises(VerificationError, match="no blocks"):
        verify_function(Function("f"))


def test_empty_block():
    fn = Function("f")
    fn.add_block("entry")
    with pytest.raises(VerificationError, match="empty block"):
        verify_function(fn)


def test_block_without_terminator():
    fn = _fn_with([Instruction(Opcode.NOP)])
    with pytest.raises(VerificationError, match="terminator"):
        verify_function(fn)


def test_terminator_mid_block():
    fn = _fn_with([Instruction(Opcode.RET), Instruction(Opcode.NOP),
                   Instruction(Opcode.RET)])
    with pytest.raises(VerificationError, match="not at end"):
        verify_function(fn)


def test_dangling_label():
    fn = _fn_with([Instruction(Opcode.JMP, label="nowhere")])
    with pytest.raises(VerificationError, match="dangling"):
        verify_function(fn)


def test_final_block_cannot_fall_off():
    fn = _fn_with([
        Instruction(Opcode.BEQ, srcs=(vreg(0), vreg(1)), label="entry"),
    ])
    with pytest.raises(VerificationError, match="fall"):
        verify_function(fn)


def test_arity_mismatch():
    fn = _fn_with([
        Instruction(Opcode.ADD, dest=vreg(0), srcs=(vreg(1),)),
        Instruction(Opcode.RET),
    ])
    with pytest.raises(VerificationError, match="expects 2"):
        verify_function(fn)


def test_missing_dest():
    fn = _fn_with([
        Instruction(Opcode.ADD, srcs=(vreg(0), vreg(1))),
        Instruction(Opcode.RET),
    ])
    with pytest.raises(VerificationError, match="destination"):
        verify_function(fn)


def test_unwanted_dest():
    fn = _fn_with([
        Instruction(Opcode.PRINT, dest=vreg(0), srcs=(vreg(1),)),
        Instruction(Opcode.RET),
    ])
    with pytest.raises(VerificationError, match="cannot have"):
        verify_function(fn)


def test_register_class_mismatch_dest():
    fn = _fn_with([
        Instruction(Opcode.FADD, dest=vreg(0), srcs=(fvreg(0), fvreg(1))),
        Instruction(Opcode.RET),
    ])
    with pytest.raises(VerificationError, match="float register"):
        verify_function(fn)


def test_register_class_mismatch_src():
    fn = _fn_with([
        Instruction(Opcode.ADD, dest=vreg(0), srcs=(fvreg(0), vreg(1))),
        Instruction(Opcode.RET),
    ])
    with pytest.raises(VerificationError, match="int register"):
        verify_function(fn)


def test_call_unknown_function(simple_program):
    fn = simple_program.function("main")
    fn.entry.instructions.insert(
        0, Instruction(Opcode.CALL, dest=vreg(90), callee="missing")
    )
    with pytest.raises(VerificationError, match="unknown"):
        verify_program(simple_program)


def test_call_arity_checked(simple_program):
    fn = simple_program.function("main")
    fn.entry.instructions.insert(
        0, Instruction(Opcode.CALL, dest=vreg(90), callee="triple")
    )
    with pytest.raises(VerificationError, match="args"):
        verify_program(simple_program)


def test_require_physical(simple_program):
    with pytest.raises(VerificationError, match="virtual register"):
        verify_program(simple_program, require_physical=True)


def test_load_offset_must_be_immediate():
    fn = _fn_with([
        Instruction(Opcode.LOAD, dest=vreg(0), srcs=(vreg(1), vreg(2))),
        Instruction(Opcode.RET),
    ])
    with pytest.raises(VerificationError, match="immediate"):
        verify_function(fn)


def test_label_on_non_branch():
    fn = _fn_with([
        Instruction(Opcode.ADD, dest=vreg(0), srcs=(vreg(1), Imm(1)),
                    label="entry"),
        Instruction(Opcode.RET),
    ])
    with pytest.raises(VerificationError, match="carry a label"):
        verify_function(fn)
