"""Extension experiment: fault models beyond the paper's register SEUs.

The paper injects only into integer registers and *discusses* two other
fault classes: opcode-bit faults (vulnerability class 3, Section 3.2)
and program-counter faults (assumed away in Section 2, deferred to
signature-based control-flow checking).  This bench runs both:

* **opcode faults** against NOFT / SWIFT / SWIFT-R show that
  register-level redundancy loses much of its power when the
  instruction itself mutates -- exactly the residual window the paper
  predicts;
* **wild jumps** against NOFT / CFC / SWIFT-R+CFC show the composable
  control-flow layer catching what data redundancy cannot.

Run:  pytest benchmarks/bench_ext_faultmodels.py --benchmark-only -s
"""

from conftest import TRIALS

from repro.faults import (
    run_campaign,
    run_opcode_campaign,
    run_wild_jump_campaign,
)
from repro.sim import Machine
from repro.transform import Technique, allocate_program, apply_cfc, protect
from repro.workloads import build

BENCH = "sort"


def _measure():
    program = build(BENCH)
    rows = {}
    for label, technique in (("NOFT", Technique.NOFT),
                             ("SWIFT", Technique.SWIFT),
                             ("SWIFT-R", Technique.SWIFTR)):
        binary = allocate_program(protect(program, technique))
        machine = Machine(binary)
        reg = run_campaign(binary, trials=TRIALS, seed=5, machine=machine)
        opc = run_opcode_campaign(binary, trials=TRIALS, seed=5,
                                  machine=machine)
        rows[label] = (reg, opc)
    jumps = {}
    for label, builder in (
        ("NOFT", lambda p: p),
        ("CFC", apply_cfc),
        ("SWIFT-R+CFC", lambda p: apply_cfc(protect(p, Technique.SWIFTR))),
    ):
        binary = allocate_program(builder(build(BENCH)))
        jumps[label] = run_wild_jump_campaign(binary, trials=TRIALS, seed=5)
    return rows, jumps


def test_extended_fault_models(benchmark):
    rows, jumps = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(f"--- opcode-bit faults vs register faults ({BENCH}) ---")
    print(f"{'technique':10s} {'reg unACE%':>11s} {'opc unACE%':>11s} "
          f"{'opc DUE%':>9s} {'opc SEGV%':>10s}")
    for label, (reg, opc) in rows.items():
        print(f"{label:10s} {reg.unace_percent:11.1f} "
              f"{opc.unace_percent:11.1f} {opc.detected_percent:9.1f} "
              f"{opc.segv_percent:10.1f}")
    print(f"\n--- wild-jump (PC) faults ({BENCH}) ---")
    print(f"{'build':12s} {'unACE%':>7s} {'DUE%':>6s} {'SDC%':>6s} "
          f"{'SEGV%':>7s}")
    for label, campaign in jumps.items():
        print(f"{label:12s} {campaign.unace_percent:7.1f} "
              f"{campaign.detected_percent:6.1f} "
              f"{campaign.sdc_percent:6.1f} {campaign.segv_percent:7.1f}")

    # Class-3 vulnerability: opcode faults erode register-level schemes.
    reg, opc = rows["SWIFT-R"]
    assert reg.unace_percent > 95.0
    assert opc.unace_percent < reg.unace_percent
    # SWIFT's checks catch *some* opcode faults (mutated results differ
    # from the shadow computation).
    assert rows["SWIFT"][1].detected_percent > 0.0
    # CFC detects a substantial share of wild jumps; plain code none.
    assert jumps["NOFT"].detected_percent == 0.0
    assert jumps["CFC"].detected_percent > 25.0
    assert jumps["CFC"].sdc_percent < jumps["NOFT"].sdc_percent
