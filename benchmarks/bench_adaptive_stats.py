"""Adaptive stopping vs the fixed 250-trials-per-cell baseline.

The paper runs a fixed fault-injection budget per (benchmark,
technique) cell.  The adaptive engine instead stops each technique's
suite-level campaign as soon as the post-stratified unACE interval is
within a target half-width -- this bench measures how many trials that
actually saves at the paper's own precision.

For each technique the fixed baseline really runs 250 trials per cell
(the paper's budget) and we record the suite-level half-width it
achieves; the adaptive engine then runs to a 2.5-point half-width
target on the same machines.  The headline assertion: the adaptive
campaigns reach the target with fewer total trials than the fixed
grid spends.

Run:  pytest benchmarks/bench_adaptive_stats.py -s
Exports: BENCH_adaptive.json (one JSONL record per arm + summary).
"""

import time

from repro.eval.pipeline import PipelineOptions, prepare_machine
from repro.eval.reliability import suite_estimate
from repro.faults import Outcome, run_campaign
from repro.obs.sink import JsonlSink
from repro.stats import AdaptiveConfig, run_adaptive_suite
from repro.transform import Technique
from repro.workloads.suite import MICRO_BENCHMARKS

SEED = 2006
FIXED_TRIALS = 250          # the paper's per-cell budget
CI_WIDTH = 0.025            # 2.5-point target half-width (suite unACE)
MAX_TRIALS = 2500           # adaptive per-technique cap
TECHNIQUES = (Technique.NOFT, Technique.TRUMP, Technique.SWIFTR)


class _Grid:
    """Just enough of ReliabilityResults for suite_estimate()."""

    def __init__(self, benchmarks, confidence=0.95):
        self.benchmarks = list(benchmarks)
        self.confidence = confidence
        self.cells = {}

    def cell(self, bench, technique):
        return self.cells[(bench, technique)]


def test_adaptive_vs_fixed_budget():
    options = PipelineOptions()
    grid = _Grid(MICRO_BENCHMARKS)
    records = []
    fixed_total = adaptive_total = 0
    unace = lambda c: c.count(Outcome.UNACE)

    print()
    for technique in TECHNIQUES:
        machines = [(bench, prepare_machine(bench, technique, options))
                    for bench in MICRO_BENCHMARKS]

        start = time.perf_counter()
        for bench, machine in machines:
            campaign = run_campaign(machine.program, trials=FIXED_TRIALS,
                                    seed=SEED, machine=machine)
            grid.cells[(bench, technique)] = campaign
            fixed_total += campaign.trials
        fixed_elapsed = time.perf_counter() - start
        fixed_est = suite_estimate(grid, technique, unace)

        config = AdaptiveConfig(ci_width=CI_WIDTH, metric="unace",
                                max_trials=MAX_TRIALS)
        machines = [(bench, prepare_machine(bench, technique, options))
                    for bench in MICRO_BENCHMARKS]
        start = time.perf_counter()
        adaptive = run_adaptive_suite(machines, config=config, seed=SEED)
        adaptive_elapsed = time.perf_counter() - start
        adaptive_total += adaptive.trials

        fixed_spent = FIXED_TRIALS * len(MICRO_BENCHMARKS)
        print(f"  {technique.label:10s} fixed {fixed_spent:5d} trials "
              f"-> hw {100*fixed_est.half_width:4.2f} pts "
              f"({fixed_elapsed:5.1f}s) | adaptive {adaptive.trials:5d} "
              f"trials -> hw {100*adaptive.estimate.half_width:4.2f} pts "
              f"in {len(adaptive.batches)} batches "
              f"({adaptive_elapsed:5.1f}s)")

        records.append({
            "kind": "adaptive_bench",
            "technique": technique.value,
            "benchmarks": list(MICRO_BENCHMARKS),
            "target_half_width": CI_WIDTH,
            "fixed_trials": fixed_spent,
            "fixed_half_width": round(fixed_est.half_width, 6),
            "fixed_seconds": round(fixed_elapsed, 3),
            "adaptive_trials": adaptive.trials,
            "adaptive_half_width": round(adaptive.estimate.half_width, 6),
            "adaptive_batches": len(adaptive.batches),
            "adaptive_target_met": adaptive.target_met,
            "adaptive_seconds": round(adaptive_elapsed, 3),
        })

        # Each adaptive campaign reaches the paper-precision target
        # without exhausting its cap.
        assert adaptive.target_met
        assert adaptive.estimate.half_width <= CI_WIDTH

    savings = 100.0 * (1 - adaptive_total / fixed_total)
    print(f"  total: adaptive {adaptive_total} vs fixed {fixed_total} "
          f"trials ({savings:.1f}% fewer)")

    with JsonlSink("BENCH_adaptive.json") as sink:
        sink.write_many(records)
        sink.write({
            "kind": "adaptive_bench_summary",
            "seed": SEED,
            "target_half_width": CI_WIDTH,
            "fixed_trials_total": fixed_total,
            "adaptive_trials_total": adaptive_total,
            "trials_saved_percent": round(savings, 1),
        })

    # The acceptance bar: adaptive stopping reaches the 2.5-point
    # suite unACE half-width on fewer total trials than the fixed
    # 250-per-cell baseline spends across the same grid.
    assert adaptive_total < fixed_total
