"""Adaptive stopping vs the fixed 250-trials-per-cell baseline.

The paper runs a fixed fault-injection budget per (benchmark,
technique) cell.  The adaptive engine instead stops each technique's
suite-level campaign as soon as the post-stratified unACE interval is
within a target half-width -- this bench measures how many trials that
actually saves at the paper's own precision.

For each technique the fixed baseline really runs 250 trials per cell
(the paper's budget) and we record the suite-level half-width it
achieves; the adaptive engine then runs to a 2.5-point half-width
target on the same machines.  The headline assertion: the adaptive
campaigns reach the target with fewer total trials than the fixed
grid spends.

The measurement lives in :func:`repro.bench.benches.
measure_adaptive_suite`, shared with ``python -m repro bench
--suite adaptive``; this test adds the correctness bars and writes
the committed baseline.

Run:  pytest benchmarks/bench_adaptive_stats.py -s
Exports: BENCH_adaptive.json (versioned: bench_meta header, one
record per arm, summary).
"""

from repro.bench import measure_adaptive_suite, write_bench

SEED = 2006
CI_WIDTH = 0.025            # 2.5-point target half-width (suite unACE)


def test_adaptive_vs_fixed_budget():
    print()
    records, details = measure_adaptive_suite(ci_width=CI_WIDTH,
                                              seed=SEED, verbose=True)

    for technique, (adaptive, _fixed_est) in details.items():
        if technique == "totals":
            continue
        # Each adaptive campaign reaches the paper-precision target
        # without exhausting its cap.
        assert adaptive.target_met
        assert adaptive.estimate.half_width <= CI_WIDTH

    write_bench("BENCH_adaptive.json", "adaptive_stats", records,
                seed=SEED)

    # The acceptance bar: adaptive stopping reaches the 2.5-point
    # suite unACE half-width on fewer total trials than the fixed
    # 250-per-cell baseline spends across the same grid.
    adaptive_total, fixed_total = details["totals"]
    assert adaptive_total < fixed_total
