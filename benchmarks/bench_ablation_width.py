"""Ablation: issue width vs protection overhead (paper Section 7.2).

The paper's central performance claim is that software redundancy rides
on *unused ILP resources*: the redundant streams are independent of the
original, so a wide machine absorbs them almost for free while a scalar
machine pays full price.  This bench sweeps the modeled issue width and
shows SWIFT-R's normalised cost falling as width grows.

Run:  pytest benchmarks/bench_ablation_width.py --benchmark-only -s
"""

from conftest import ABLATION_BENCHMARKS

from repro.eval import prepare_machine
from repro.sim import TimingConfig, TimingSimulator
from repro.transform import Technique

WIDTHS = (1, 2, 4, 8)


def _measure():
    rows = {}
    for bench in ABLATION_BENCHMARKS:
        per_width = {}
        for width in WIDTHS:
            config = TimingConfig(width=width)
            noft = TimingSimulator(
                prepare_machine(bench, Technique.NOFT), config
            ).run().cycles
            swiftr = TimingSimulator(
                prepare_machine(bench, Technique.SWIFTR), config
            ).run().cycles
            per_width[width] = swiftr / noft
        rows[bench] = per_width
    return rows


def test_width_absorbs_redundancy(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(f"{'benchmark':10s}" + "".join(f"{'w=' + str(w):>9s}"
                                         for w in WIDTHS))
    for bench, per_width in results.items():
        print(f"{bench:10s}" + "".join(f"{per_width[w]:9.2f}"
                                       for w in WIDTHS))
    for bench, per_width in results.items():
        # Wider machines hide more of the redundancy.
        assert per_width[8] < per_width[1]
        # On a scalar machine the cost approaches the instruction-count
        # ratio (towards 3x for TMR); on a wide one it drops towards the
        # paper's ~2x and below.
        assert per_width[1] > per_width[4] * 1.05
