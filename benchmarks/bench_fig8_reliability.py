"""Figure 8: reliability under SEU injection (paper Section 7.1).

Regenerates the per-benchmark unACE/SEGV/SDC percentages for NOFT,
MASK, TRUMP, TRUMP/MASK, TRUMP/SWIFT-R, and SWIFT-R over the ten
paper-analogue benchmarks, prints the same stacked data the paper's
figure shows, and asserts the paper's qualitative findings.

Run:  pytest benchmarks/bench_fig8_reliability.py --benchmark-only -s
"""

from conftest import TRIALS

from repro.bench import write_bench
from repro.eval import evaluate_reliability, render_figure8
from repro.transform import Technique
from repro.workloads import PAPER_BENCHMARKS


def _export(results, path="BENCH_fig8.json"):
    """Machine-readable trajectory record, one JSONL line per cell."""
    records = []
    for bench in results.benchmarks:
        for tech in results.techniques:
            cell = results.cell(bench, tech)
            records.append({
                "kind": "fig8_cell", "benchmark": bench,
                "technique": tech.value, "trials": cell.trials,
                "unace_percent": round(cell.unace_percent, 4),
                "segv_percent": round(cell.segv_percent, 4),
                "sdc_percent": round(cell.sdc_percent, 4),
                "detected_percent": round(cell.detected_percent, 4),
                "recoveries": cell.recoveries,
            })
    records.append({
        "kind": "fig8_summary", "trials": results.trials,
        "seed": results.seed,
        "mean_unace": {t.value: round(results.mean_unace(t), 4)
                       for t in results.techniques},
        "failure_reduction": {
            t.value: round(results.failure_reduction(t), 4)
            for t in results.techniques if t is not Technique.NOFT
        },
    })
    write_bench(path, "fig8_reliability", records, seed=results.seed,
                trials=results.trials)


def test_figure8(benchmark):
    results = benchmark.pedantic(
        lambda: evaluate_reliability(trials=TRIALS, seed=2006),
        rounds=1, iterations=1,
    )
    print()
    print(render_figure8(results))
    _export(results)

    unace = {t: results.mean_unace(t) for t in results.techniques}
    # Paper shape: the recovery ladder (Figure 8's left-to-right climb).
    assert unace[Technique.NOFT] < unace[Technique.TRUMP]
    assert unace[Technique.TRUMP] < unace[Technique.TRUMP_SWIFTR] + 1.0
    assert unace[Technique.SWIFTR] >= unace[Technique.TRUMP] + 2.0
    assert unace[Technique.MASK] >= unace[Technique.NOFT] - 1.0
    # NOFT: most faults are already unACE (paper: 74.18%).
    assert 60.0 <= unace[Technique.NOFT] <= 92.0
    # SWIFT-R approaches total protection (paper: 97.27%).
    assert unace[Technique.SWIFTR] > 95.0
    # The headline reductions (paper: 89.39% SWIFT-R, 52.48% TRUMP).
    assert results.failure_reduction(Technique.SWIFTR) > 75.0
    assert results.failure_reduction(Technique.TRUMP) > 25.0
    # SEGV dominates SDC for unprotected code (paper: 18.0% vs 7.8%).
    assert results.mean_segv(Technique.NOFT) > 0.5 * \
        results.mean_sdc(Technique.NOFT)
    # TRUMP's SEGV improvement outpaces its SDC improvement (pointer
    # chains are TRUMP's sweet spot; paper Section 7.1).
    noft_segv = results.mean_segv(Technique.NOFT)
    trump_segv = results.mean_segv(Technique.TRUMP)
    assert trump_segv < noft_segv
    # MASK never hurts on average (the paper notes individual
    # benchmarks can come out slightly worse through schedule noise,
    # so the per-benchmark comparison gets a sampling-noise margin).
    assert results.mean_sdc(Technique.MASK) <= \
        results.mean_sdc(Technique.NOFT) + 1.0
    # adpcmdec: MASK visibly reduces SDC (paper: 17.30% -> 12.87%).
    margin = 100.0 * 2.0 / (TRIALS ** 0.5)   # ~2 binomial std errors
    adpcm_noft = results.cell("adpcmdec", Technique.NOFT).sdc_percent
    adpcm_mask = results.cell("adpcmdec", Technique.MASK).sdc_percent
    assert adpcm_mask <= adpcm_noft + margin
