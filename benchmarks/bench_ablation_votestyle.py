"""Ablation: SWIFT-R majority-vote emission style.

The paper's voting procedure is described abstractly (Section 3.1);
this library offers two lowerings and this bench quantifies the trade:

* ``BRANCHING``  -- 2 hot instructions per vote, cold repair paths;
* ``BRANCHFREE`` -- 7 straight-line bitwise-majority instructions,
  no control flow, repairs *all three* copies unconditionally.

Run:  pytest benchmarks/bench_ablation_votestyle.py --benchmark-only -s
"""

from conftest import ABLATION_BENCHMARKS, TRIALS

from repro.eval import PipelineOptions, prepare_machine
from repro.faults import run_campaign
from repro.sim import TimingSimulator
from repro.transform import Technique, VoteStyle


def _measure(style: VoteStyle):
    options = PipelineOptions(vote_style=style)
    rows = {}
    for bench in ABLATION_BENCHMARKS:
        noft = TimingSimulator(
            prepare_machine(bench, Technique.NOFT, options)
        ).run().cycles
        machine = prepare_machine(bench, Technique.SWIFTR, options)
        cycles = TimingSimulator(machine).run().cycles
        campaign = run_campaign(machine.program, trials=TRIALS, seed=17,
                                machine=machine)
        rows[bench] = (cycles / noft, campaign.unace_percent)
    return rows


def test_vote_style_tradeoff(benchmark):
    results = benchmark.pedantic(
        lambda: {style: _measure(style) for style in VoteStyle},
        rounds=1, iterations=1,
    )
    print()
    print(f"{'benchmark':10s} {'branching':>20s} {'branchfree':>20s}")
    print(f"{'':10s} {'norm':>9s} {'unACE%':>10s} {'norm':>9s} "
          f"{'unACE%':>10s}")
    for bench in ABLATION_BENCHMARKS:
        b_norm, b_un = results[VoteStyle.BRANCHING][bench]
        f_norm, f_un = results[VoteStyle.BRANCHFREE][bench]
        print(f"{bench:10s} {b_norm:9.2f} {b_un:10.1f} "
              f"{f_norm:9.2f} {f_un:10.1f}")
    for bench in ABLATION_BENCHMARKS:
        b_norm, b_un = results[VoteStyle.BRANCHING][bench]
        f_norm, f_un = results[VoteStyle.BRANCHFREE][bench]
        # Both styles must protect effectively.
        assert b_un > 90.0 and f_un > 90.0
        # Branch-free votes cost more instructions; allow parity but
        # not a win on every benchmark.
        assert f_norm > b_norm * 0.9
