"""Campaign throughput: serial vs checkpointed vs parallel vs JIT.

Campaigns are the evaluation's dominant cost (250 trials per
(benchmark, technique) cell in the paper).  This bench measures
trials/sec on a SWIFT-R-protected workload along the optimisation
axes this repo implements -- golden-run checkpointing with
convergence fast-forward, ``--jobs`` process sharding, and the block
JIT -- and asserts that all the paths agree bit-for-bit while the
checkpointed path is at least 2x the serial reference on a single
core and the JIT at least 5x over full replay.

It also measures two observability features' cost envelopes:

* taint tracing: a ``--taint`` campaign pays for per-instruction
  dataflow tracking, but a campaign *without* taint must be
  unaffected by the feature existing -- the run loop's single
  ``machine.taint is None`` check is the entire overhead, and the
  re-measured taint-off datapoint holds that within noise;
* the simulator profiler: a profiled campaign runs the mirrored
  counting loop, and its throughput is recorded as a first-class
  datapoint (``profile_overhead`` in the summary) so the bench gate
  can catch the profiler getting expensive.

The measurement itself lives in :func:`repro.bench.benches.
measure_campaign_suite`, shared with ``python -m repro bench``; this
test adds the correctness bars and writes the committed baseline.

Run:  pytest benchmarks/bench_campaign_throughput.py -s
Exports: BENCH_campaign.json (versioned: bench_meta header, one
record per mode, summary).
"""

from conftest import TRIALS

from repro.bench import measure_campaign_suite, write_bench

SEED = 2006


def test_campaign_throughput():
    print()
    records, results = measure_campaign_suite(trials=TRIALS, seed=SEED,
                                              verbose=True)

    # All paths are the same campaign, bit for bit -- including under
    # taint tracing and profiling, which observe trials without
    # perturbing them.
    serial = results["serial"]
    assert results["checkpointed"] == serial
    assert results["parallel"] == serial
    assert results["taint"].counts == serial.counts
    assert results["taint"].recoveries == serial.recoveries
    assert results["taint_off_recheck"] == results["checkpointed"]
    assert results["profile"] == serial
    # The JIT modes are the same campaign too, trial for trial.
    assert results["jit_serial"] == serial
    assert results["jit"] == serial

    write_bench("BENCH_campaign.json", "campaign_throughput", records,
                seed=SEED, trials=TRIALS)

    summary = records[-1]
    assert summary["kind"] == "campaign_bench_summary"
    # The acceptance bar: checkpointing alone (one core, no pool)
    # at least doubles campaign throughput on a protected workload.
    assert summary["checkpoint_speedup"] >= 2.0
    # Taint-off throughput is unchanged by the feature within noise:
    # the recheck ran after a full taint-on campaign on this machine,
    # so drift here would mean tracing state leaked into the fast path.
    assert 0.5 <= summary["taint_off_ratio"] <= 2.0
    # Block JIT: at least 5x the full-replay interpreter on the same
    # suite (the compiled code also compounds with checkpointing,
    # recorded as jit_speedup over the checkpointed baseline).
    assert summary["jit_serial_speedup"] >= 5.0
