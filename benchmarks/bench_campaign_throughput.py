"""Campaign throughput: serial vs checkpointed vs process-parallel.

Campaigns are the evaluation's dominant cost (250 trials per
(benchmark, technique) cell in the paper).  This bench measures
trials/sec on a SWIFT-R-protected workload along the two optimisation
axes this repo implements -- golden-run checkpointing with
convergence fast-forward, and ``--jobs`` process sharding -- and
asserts that all three paths agree bit-for-bit while the checkpointed
path is at least 2x the serial reference on a single core.

It also measures taint tracing's cost envelope: a ``--taint`` campaign
pays for per-instruction dataflow tracking, but a campaign *without*
taint must be unaffected by the feature existing -- the run loop's
single ``machine.taint is None`` check is the entire overhead, and the
re-measured taint-off datapoint holds that within noise.

Run:  pytest benchmarks/bench_campaign_throughput.py -s
Exports: BENCH_campaign.json (one JSONL record per mode + summary).
"""

import os
import time

from conftest import TRIALS

from repro.eval.pipeline import prepare
from repro.faults import run_campaign, run_parallel_campaign
from repro.obs.campaign_log import CampaignLog
from repro.obs.sink import JsonlSink
from repro.sim import Machine
from repro.transform import Technique

WORKLOAD = "crc32"
SEED = 2006
MAX_INSTRUCTIONS = 20_000_000


def _timed(label, runner):
    start = time.perf_counter()
    result = runner()
    elapsed = time.perf_counter() - start
    record = {
        "kind": "campaign_bench",
        "mode": label,
        "workload": WORKLOAD,
        "technique": Technique.SWIFTR.value,
        "trials": result.trials,
        "seconds": round(elapsed, 4),
        "trials_per_sec": round(result.trials / elapsed, 2),
    }
    print(f"  {label:12s} {elapsed:7.3f}s  "
          f"{record['trials_per_sec']:8.1f} trials/s")
    return result, record


def test_campaign_throughput():
    program = prepare(WORKLOAD, Technique.SWIFTR)
    # Fresh machine per mode so no mode benefits from a warmed peer;
    # compilation happens outside the timed region either way.
    machines = [Machine(program, max_instructions=MAX_INSTRUCTIONS)
                for _ in range(4)]
    jobs = max(2, min(4, os.cpu_count() or 1))

    print()
    serial, serial_rec = _timed(
        "serial",
        lambda: run_campaign(program, trials=TRIALS, seed=SEED,
                             machine=machines[0], checkpoint_interval=0),
    )
    checkpointed, ckpt_rec = _timed(
        "checkpointed",
        lambda: run_campaign(program, trials=TRIALS, seed=SEED,
                             machine=machines[1]),
    )
    parallel, par_rec = _timed(
        f"parallel x{jobs}",
        lambda: run_parallel_campaign(program, trials=TRIALS, seed=SEED,
                                      jobs=jobs,
                                      max_instructions=MAX_INSTRUCTIONS),
    )
    par_rec["mode"] = "parallel"
    par_rec["jobs"] = jobs
    taint_log = CampaignLog()
    tainted, taint_rec = _timed(
        "taint-on",
        lambda: run_campaign(program, trials=TRIALS, seed=SEED,
                             machine=machines[2], log=taint_log,
                             taint=True),
    )
    taint_rec["mode"] = "taint"
    recheck, recheck_rec = _timed(
        "taint-off",
        lambda: run_campaign(program, trials=TRIALS, seed=SEED,
                             machine=machines[3]),
    )
    recheck_rec["mode"] = "taint_off_recheck"

    # All paths are the same campaign, bit for bit -- including under
    # taint tracing, which observes trials without perturbing them.
    assert checkpointed == serial
    assert parallel == serial
    assert tainted.counts == serial.counts
    assert tainted.recoveries == serial.recoveries
    assert recheck == checkpointed

    ckpt_speedup = ckpt_rec["trials_per_sec"] / serial_rec["trials_per_sec"]
    par_speedup = par_rec["trials_per_sec"] / serial_rec["trials_per_sec"]
    taint_ratio = (recheck_rec["trials_per_sec"]
                   / ckpt_rec["trials_per_sec"])
    print(f"  checkpointing speedup: {ckpt_speedup:.2f}x "
          f"(parallel x{jobs}: {par_speedup:.2f}x, "
          f"taint-off recheck {taint_ratio:.2f}x of first measure)")

    with JsonlSink("BENCH_campaign.json") as sink:
        sink.write_many([serial_rec, ckpt_rec, par_rec,
                         taint_rec, recheck_rec])
        sink.write({
            "kind": "campaign_bench_summary",
            "workload": WORKLOAD,
            "technique": Technique.SWIFTR.value,
            "trials": TRIALS,
            "seed": SEED,
            "checkpoint_speedup": round(ckpt_speedup, 2),
            "parallel_jobs": jobs,
            "parallel_speedup": round(par_speedup, 2),
            "taint_on_trials_per_sec": taint_rec["trials_per_sec"],
            "taint_off_ratio": round(taint_ratio, 2),
        })

    # The acceptance bar: checkpointing alone (one core, no pool)
    # at least doubles campaign throughput on a protected workload.
    assert ckpt_speedup >= 2.0
    # Taint-off throughput is unchanged by the feature within noise:
    # the recheck ran after a full taint-on campaign on this machine,
    # so drift here would mean tracing state leaked into the fast path.
    assert 0.5 <= taint_ratio <= 2.0
