"""Campaign throughput: serial vs checkpointed vs process-parallel.

Campaigns are the evaluation's dominant cost (250 trials per
(benchmark, technique) cell in the paper).  This bench measures
trials/sec on a SWIFT-R-protected workload along the two optimisation
axes this repo implements -- golden-run checkpointing with
convergence fast-forward, and ``--jobs`` process sharding -- and
asserts that all three paths agree bit-for-bit while the checkpointed
path is at least 2x the serial reference on a single core.

Run:  pytest benchmarks/bench_campaign_throughput.py -s
Exports: BENCH_campaign.json (one JSONL record per mode + summary).
"""

import os
import time

from conftest import TRIALS

from repro.eval.pipeline import prepare
from repro.faults import run_campaign, run_parallel_campaign
from repro.obs.sink import JsonlSink
from repro.sim import Machine
from repro.transform import Technique

WORKLOAD = "crc32"
SEED = 2006
MAX_INSTRUCTIONS = 20_000_000


def _timed(label, runner):
    start = time.perf_counter()
    result = runner()
    elapsed = time.perf_counter() - start
    record = {
        "kind": "campaign_bench",
        "mode": label,
        "workload": WORKLOAD,
        "technique": Technique.SWIFTR.value,
        "trials": result.trials,
        "seconds": round(elapsed, 4),
        "trials_per_sec": round(result.trials / elapsed, 2),
    }
    print(f"  {label:12s} {elapsed:7.3f}s  "
          f"{record['trials_per_sec']:8.1f} trials/s")
    return result, record


def test_campaign_throughput():
    program = prepare(WORKLOAD, Technique.SWIFTR)
    # Fresh machine per mode so no mode benefits from a warmed peer;
    # compilation happens outside the timed region either way.
    machines = [Machine(program, max_instructions=MAX_INSTRUCTIONS)
                for _ in range(2)]
    jobs = max(2, min(4, os.cpu_count() or 1))

    print()
    serial, serial_rec = _timed(
        "serial",
        lambda: run_campaign(program, trials=TRIALS, seed=SEED,
                             machine=machines[0], checkpoint_interval=0),
    )
    checkpointed, ckpt_rec = _timed(
        "checkpointed",
        lambda: run_campaign(program, trials=TRIALS, seed=SEED,
                             machine=machines[1]),
    )
    parallel, par_rec = _timed(
        f"parallel x{jobs}",
        lambda: run_parallel_campaign(program, trials=TRIALS, seed=SEED,
                                      jobs=jobs,
                                      max_instructions=MAX_INSTRUCTIONS),
    )
    par_rec["mode"] = "parallel"
    par_rec["jobs"] = jobs

    # All three paths are the same campaign, bit for bit.
    assert checkpointed == serial
    assert parallel == serial

    ckpt_speedup = ckpt_rec["trials_per_sec"] / serial_rec["trials_per_sec"]
    par_speedup = par_rec["trials_per_sec"] / serial_rec["trials_per_sec"]
    print(f"  checkpointing speedup: {ckpt_speedup:.2f}x "
          f"(parallel x{jobs}: {par_speedup:.2f}x)")

    with JsonlSink("BENCH_campaign.json") as sink:
        sink.write_many([serial_rec, ckpt_rec, par_rec])
        sink.write({
            "kind": "campaign_bench_summary",
            "workload": WORKLOAD,
            "technique": Technique.SWIFTR.value,
            "trials": TRIALS,
            "seed": SEED,
            "checkpoint_speedup": round(ckpt_speedup, 2),
            "parallel_jobs": jobs,
            "parallel_speedup": round(par_speedup, 2),
        })

    # The acceptance bar: checkpointing alone (one core, no pool)
    # at least doubles campaign throughput on a protected workload.
    assert ckpt_speedup >= 2.0
