"""Figure 9: execution time normalised to NOFT (paper Section 7.2).

Regenerates the per-benchmark normalised execution times for MASK,
TRUMP, TRUMP/MASK, TRUMP/SWIFT-R and SWIFT-R plus the geometric mean,
and asserts the paper's qualitative findings (orderings and rough
factors; paper geomeans: 1.00 / 1.36 / 1.37 / 1.98 / 1.99).

Run:  pytest benchmarks/bench_fig9_performance.py --benchmark-only -s
"""

from repro.bench import write_bench
from repro.eval import evaluate_performance, render_figure9
from repro.transform import Technique


def _export(results, path="BENCH_fig9.json"):
    """Machine-readable trajectory record, one JSONL line per cell."""
    records = []
    for bench in results.benchmarks:
        for tech in results.techniques:
            cell = results.cells[(bench, tech)]
            records.append({
                "kind": "fig9_cell", "benchmark": bench,
                "technique": tech.value, "cycles": cell.cycles,
                "instructions": cell.instructions,
                "ipc": round(cell.ipc, 4),
                "normalized": round(results.normalized(bench, tech), 4),
            })
    records.append({
        "kind": "fig9_summary",
        "geomean_normalized": {
            t.value: round(results.geomean_normalized(t), 4)
            for t in results.techniques
        },
    })
    write_bench(path, "fig9_performance", records)


def test_figure9(benchmark):
    results = benchmark.pedantic(
        lambda: evaluate_performance(),
        rounds=1, iterations=1,
    )
    print()
    print(render_figure9(results))
    _export(results)

    geo = {t: results.geomean_normalized(t) for t in results.techniques}
    # MASK is essentially free (paper: 1.00x).
    assert geo[Technique.MASK] < 1.10
    # TRUMP is the middle ground (paper: 1.36x).
    assert 1.15 < geo[Technique.TRUMP] < 1.75
    # SWIFT-R and TRUMP/SWIFT-R are the heavyweights (paper: ~2x),
    # and far below the naive 3x of triplication.
    assert 1.5 < geo[Technique.SWIFTR] < 2.6
    assert 1.5 < geo[Technique.TRUMP_SWIFTR] < 2.7
    # Orderings.
    assert geo[Technique.MASK] < geo[Technique.TRUMP]
    assert geo[Technique.TRUMP] <= geo[Technique.TRUMP_MASK] + 0.02
    assert geo[Technique.TRUMP_MASK] < geo[Technique.SWIFTR]
    # TRUMP's overhead is roughly a third of SWIFT-R's (paper: 36 vs 99).
    trump_overhead = geo[Technique.TRUMP] - 1.0
    swiftr_overhead = geo[Technique.SWIFTR] - 1.0
    assert trump_overhead < 0.75 * swiftr_overhead
    # FP-dominated art barely pays for protection (paper Section 7.2).
    assert results.normalized("art", Technique.SWIFTR) < \
        results.geomean_normalized(Technique.SWIFTR) + 0.15
    # Memory-bound mcf is *not* among the cheapest here the way the
    # paper's testbed showed, but every benchmark stays below 3x.
    for bench in results.benchmarks:
        assert results.normalized(bench, Technique.SWIFTR) < 3.0
