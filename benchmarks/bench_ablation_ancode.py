"""Ablation: the AN-code constant A = 2**n - 1 (paper Section 4.1).

The paper chooses the smallest non-trivial n (n=2, A=3) to minimise the
bits the codeword steals from the register.  Larger A keeps single-bit
detection perfect but shrinks TRUMP's applicable range (values must stay
below 2**63 / A), so coverage -- and with it reliability -- can only
degrade, while cost stays roughly flat (the encode sequence is the same
shift-and-subtract).

Run:  pytest benchmarks/bench_ablation_ancode.py --benchmark-only -s
"""

from conftest import ABLATION_BENCHMARKS, TRIALS

from repro.eval import PipelineOptions, prepare_machine
from repro.faults import run_campaign
from repro.sim import TimingSimulator
from repro.transform import Technique, coverage_report
from repro.transform.engine import ProtectionConfig
from repro.workloads import build

POWERS = (2, 3, 4)   # A = 3, 7, 15


def _coverage(bench: str, power: int) -> float:
    config = ProtectionConfig(an_power=power)
    covered = total = 0
    for fn in build(bench):
        report = coverage_report(fn, config)
        covered += report["an_definitions"]
        total += report["definitions"]
    return covered / total if total else 0.0


def _measure():
    rows = {}
    for power in POWERS:
        options = PipelineOptions(an_power=power)
        per_bench = {}
        for bench in ABLATION_BENCHMARKS:
            noft = TimingSimulator(
                prepare_machine(bench, Technique.NOFT, options)
            ).run().cycles
            machine = prepare_machine(bench, Technique.TRUMP, options)
            cycles = TimingSimulator(machine).run().cycles
            campaign = run_campaign(machine.program, trials=TRIALS,
                                    seed=31, machine=machine)
            per_bench[bench] = (cycles / noft, campaign.unace_percent,
                                _coverage(bench, power))
        rows[power] = per_bench
    return rows


def test_an_constant_choice(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(f"{'benchmark':10s} " + "".join(
        f"{'A=' + str((1 << p) - 1):>22s}" for p in POWERS))
    for bench in ABLATION_BENCHMARKS:
        row = f"{bench:10s} "
        for power in POWERS:
            norm, unace, cov = results[power][bench]
            row += f"  {norm:5.2f}x {unace:5.1f}% cov{cov:4.2f}"
        print(row)
    for bench in ABLATION_BENCHMARKS:
        # Applicable coverage never grows with A.
        coverages = [results[p][bench][2] for p in POWERS]
        assert coverages == sorted(coverages, reverse=True)
        # Every A still protects correctly (semantics checked by
        # prepare(); reliability must not collapse).
        for power in POWERS:
            assert results[power][bench][1] >= \
                results[POWERS[0]][bench][1] - 12.0
