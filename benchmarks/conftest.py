"""Shared configuration for the benchmark/experiment harness.

Trial counts are environment-scalable: the paper used 250 fault
injections per (benchmark, technique) cell; the default here is lower
so a full `pytest benchmarks/ --benchmark-only` run finishes in
minutes.  Set ``REPRO_TRIALS=250`` for full-fidelity campaigns.
"""

from __future__ import annotations

import os

#: Fault-injection trials per campaign cell (paper: 250).
TRIALS = int(os.environ.get("REPRO_TRIALS", "60"))

#: Benchmarks used by the ablation benches (fast, behaviourally spread).
ABLATION_BENCHMARKS = ("adpcmdec", "matmul", "crc32")
