"""Ablation: check placement vs ILP scheduling (paper Sections 3.2/7.1).

The paper observes that its compiler "was not specifically directed to
schedule for reliability" and that moving checks closer to uses would
improve reliability, possibly at performance cost.  This bench builds
SWIFT-R binaries three ways -- unscheduled (checks emitted adjacent to
uses), ILP-scheduled, and CHECKS_LATE-scheduled -- and measures both
sides of the trade.

Run:  pytest benchmarks/bench_ablation_schedule.py --benchmark-only -s
"""

from conftest import ABLATION_BENCHMARKS, TRIALS

from repro.faults import run_campaign
from repro.sim import Machine, TimingSimulator
from repro.transform import (
    SchedulePolicy,
    Technique,
    allocate_program,
    protect,
    schedule_program,
)
from repro.workloads import build

MODES = ("unscheduled", "ilp", "checks-late")


def _build(bench: str, mode: str):
    hardened = protect(build(bench), Technique.SWIFTR)
    if mode == "ilp":
        hardened = schedule_program(hardened, SchedulePolicy.ILP)
    elif mode == "checks-late":
        hardened = schedule_program(hardened, SchedulePolicy.CHECKS_LATE)
    return allocate_program(hardened)


def _measure():
    rows = {}
    for bench in ABLATION_BENCHMARKS:
        noft = TimingSimulator(
            Machine(allocate_program(protect(build(bench), Technique.NOFT)))
        ).run().cycles
        per_mode = {}
        for mode in MODES:
            machine = Machine(_build(bench, mode))
            cycles = TimingSimulator(machine).run().cycles
            machine.reset()
            campaign = run_campaign(machine.program, trials=TRIALS,
                                    seed=77, machine=machine)
            per_mode[mode] = (cycles / noft, campaign.unace_percent)
        rows[bench] = per_mode
    return rows


def test_schedule_policy_tradeoff(benchmark):
    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    header = f"{'benchmark':10s}" + "".join(f"{m:>22s}" for m in MODES)
    print(header)
    for bench, per_mode in results.items():
        row = f"{bench:10s}"
        for mode in MODES:
            norm, unace = per_mode[mode]
            row += f"   {norm:5.2f}x {unace:6.1f}%    "
        print(row)
    for bench, per_mode in results.items():
        for mode in MODES:
            # Scheduling must never break protection.
            assert per_mode[mode][1] > 90.0
