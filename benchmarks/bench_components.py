"""Component micro-benchmarks: throughput of the library's moving parts.

Unlike the figure benches these measure the *library* (simulator speed,
pass latency, allocator latency, campaign throughput), so regressions in
the infrastructure show up even when the science stays right.

Run:  pytest benchmarks/bench_components.py --benchmark-only
"""

import pytest

from repro.faults import run_campaign
from repro.lang import compile_source
from repro.sim import Machine, TimingSimulator
from repro.transform import (
    Technique,
    allocate_program,
    protect,
)
from repro.workloads import WORKLOADS, build


def test_simulator_throughput(benchmark):
    """Functional-interpreter speed on the matmul kernel."""
    machine = Machine(allocate_program(build("matmul")))

    def run():
        machine.reset()
        return machine.run(None)

    result = benchmark(run)
    assert result.status.value == "exited"


def test_timing_model_throughput(benchmark):
    machine = Machine(allocate_program(build("matmul")))
    sim = TimingSimulator(machine)
    result = benchmark(sim.run)
    assert result.cycles > 0


def test_compile_minic(benchmark):
    source = WORKLOADS["adpcmdec"].source
    program = benchmark(compile_source, source)
    assert program.num_instructions() > 100


@pytest.mark.parametrize("technique", [Technique.SWIFT, Technique.SWIFTR,
                                       Technique.TRUMP])
def test_protection_pass_latency(benchmark, technique):
    program = build("adpcmdec")
    hardened = benchmark(protect, program, technique)
    assert hardened.num_instructions() > program.num_instructions()


def test_register_allocation_latency(benchmark):
    hardened = protect(build("adpcmdec"), Technique.SWIFTR)
    allocated = benchmark(allocate_program, hardened)
    assert allocated.function("main").frame_words >= 0


def test_campaign_throughput(benchmark):
    binary = allocate_program(build("crc32"))
    machine = Machine(binary)

    def campaign():
        return run_campaign(binary, trials=20, seed=3, machine=machine)

    result = benchmark(campaign)
    assert result.trials == 20


def test_machine_compilation_latency(benchmark):
    binary = allocate_program(protect(build("adpcmdec"),
                                      Technique.SWIFTR))
    machine = benchmark(Machine, binary)
    assert machine.entry is not None
