"""Campaign service: submission overhead and cache-hit payoff.

The ``repro.serve`` subsystem promises two things the bench gate
should hold it to: a submission that misses the ledger cache costs
roughly one direct campaign (the queue tick, worker fork, and result
round-trip are bounded overhead, not a multiple of the work), and a
submission that *hits* the cache costs essentially nothing -- the
server answers from the ledger without executing a single trial.

This bench times the same spec three ways -- ``direct`` (in-process
``run_spec`` + store, what ``campaign --store`` costs), ``cold``
(submitted to a fresh in-thread server with an empty ledger), and
``cached`` (the identical spec resubmitted) -- and asserts the
service-layer correctness bars on the side: all three paths land on
the *same* content-addressed run id, the stored manifests are
byte-identical, and the cache hit executed zero trials.

The measurement itself lives in :func:`repro.bench.benches.
measure_serve_suite`, shared with ``python -m repro bench --suite
serve``; the gated headlines are ``cold_overhead`` (lower is better)
and ``cached_speedup`` (higher is better).

Run:  pytest benchmarks/bench_serve.py -s
Exports: BENCH_serve.json (versioned: bench_meta header, one record
per mode, summary).
"""

from conftest import TRIALS

from repro.bench import measure_serve_suite, write_bench

SEED = 2006


def test_serve_overhead():
    print()
    records, details = measure_serve_suite(trials=TRIALS, seed=SEED,
                                           verbose=True)

    # The service is a cache over the same content-addressed ledger the
    # CLI writes: every path lands on the same run id, byte for byte.
    assert details["direct_run"] == details["cold_run"]
    assert details["cached_run"] == details["cold_run"]
    assert details["manifests_identical"]

    # The resubmissions were answered from the ledger: the server
    # executed exactly the two cold campaigns and nothing else.
    stats = details["stats"]
    assert stats["executed"] == 2
    assert stats["cache_hits"] == 3
    assert stats["failed"] == 0

    # A cache hit costs no trials and beats re-running by a wide margin.
    cached = next(r for r in records if r["mode"] == "cached")
    assert cached["trials_executed"] == 0
    summary = next(r for r in records
                   if r["kind"] == "serve_bench_summary")
    assert summary["cached_speedup"] > 2.0

    write_bench("BENCH_serve.json", "serve_overhead", records,
                seed=SEED, trials=TRIALS)
